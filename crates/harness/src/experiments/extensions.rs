//! §V-C future-work experiments (hardware GRO, the BIG TCP +
//! MSG_ZEROCOPY custom kernel), the fault-recovery robustness study
//! that exercises the fault-injection subsystem, and the many-flow
//! `ext_scale` fan-in study that extends the paper's `-P 16` axis
//! toward fleet scale.

use super::common::throughput_figure;
use crate::ctx::RunCtx;
use crate::render::FigureData;
use crate::scenario::Scenario;
use crate::testbeds::Testbeds;
use iperf3sim::Iperf3Opts;
use linuxhost::{HostConfig, KernelVersion};
use nethw::{NicModel, PathSpec};
use netsim::FaultPlan;
use simcore::{BitRate, Bytes, SimDuration};

/// §V-C — receiver-side hardware GRO (SHAMPO, ConnectX-7 + kernel
/// 6.11): "a 33 % improvement … for single stream tests with a 9 K
/// MTU … an impressive 160 % improvement" at 1500 B.
///
/// The preview hosts are Intel machines fitted with ConnectX-7 (the
/// AmLight CX-5 has no hardware GRO).
pub fn hw_gro(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let lan = PathSpec::lan("Intel LAN (CX-7)", BitRate::gbps(100.0));
    let host = |mtu: u64, hw: bool| -> HostConfig {
        let kernel = if hw { KernelVersion::L6_11 } else { KernelVersion::L6_8 };
        let mut cfg = HostConfig::amlight_intel(kernel);
        cfg.nic = NicModel::ConnectX7;
        cfg.offload = linuxhost::OffloadConfig::standard(Bytes::new(mtu));
        if hw {
            cfg.offload = cfg.offload.with_hw_gro(kernel);
        }
        cfg
    };
    let opts = Iperf3Opts::new(effort.lan_secs()).omit(effort.omit_secs(false));
    let mk = |label: &str, hw: bool| {
        let scenarios = vec![
            Scenario::symmetric(label, host(9000, hw), lan.clone(), opts.clone()),
            Scenario::symmetric(label, host(1500, hw), lan.clone(), opts.clone()),
        ];
        (label.to_string(), scenarios)
    };
    let grid = vec![mk("software GRO (6.8)", false), mk("hardware GRO (6.11)", true)];
    vec![throughput_figure(
        "SV-C: Hardware GRO preview (Intel + ConnectX-7, single stream)",
        vec!["MTU 9000".into(), "MTU 1500".into()],
        grid,
        ctx,
    )]
}

/// §V-C — BIG TCP and MSG_ZEROCOPY combined on a custom
/// `MAX_SKB_FRAGS=45` kernel: "up to 65 % improved performance".
pub fn bigtcp_zerocopy(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let lan = PathSpec::lan("AmLight LAN", BitRate::gbps(100.0));
    let base = HostConfig::amlight_intel(KernelVersion::L6_8);
    let mut bigtcp = base.clone();
    bigtcp.offload = bigtcp
        .offload
        .with_big_tcp(linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
    // The custom kernel build that lets both features coexist.
    let mut custom = bigtcp.clone();
    custom.offload = custom.offload.with_max_skb_frags(45, KernelVersion::L6_8);
    custom.name = "amlight-intel-6.8-maxskbfrags45".into();

    let secs = effort.lan_secs();
    let opts = || Iperf3Opts::new(secs).omit(effort.omit_secs(false));
    let grid = vec![
        (
            "default".to_string(),
            vec![Scenario::symmetric("default", base.clone(), lan.clone(), opts())],
        ),
        (
            "BIG TCP".to_string(),
            vec![Scenario::symmetric("BIG TCP", bigtcp.clone(), lan.clone(), opts())],
        ),
        (
            "zerocopy+pace50".to_string(),
            vec![Scenario::symmetric(
                "zerocopy+pace50",
                base.clone(),
                lan.clone(),
                opts().zerocopy().fq_rate(BitRate::gbps(50.0)),
            )],
        ),
        (
            "BIG TCP + zerocopy (custom kernel)".to_string(),
            vec![Scenario::symmetric(
                "BIG TCP + zerocopy",
                custom,
                lan.clone(),
                opts().zerocopy().fq_rate(BitRate::gbps(85.0)),
            )],
        ),
    ];
    vec![throughput_figure(
        "SV-C: BIG TCP + MSG_ZEROCOPY on a MAX_SKB_FRAGS=45 kernel (Intel LAN)",
        vec!["LAN".into()],
        grid,
        ctx,
    )]
}

/// Robustness study: a clean ESnet LAN run against the same run with
/// each fault class injected mid-test. Recovery is left entirely to
/// the modelled TCP machinery (RTO/TLP, cwnd regrowth, window
/// updates), so the per-fault throughput cost *is* the result.
pub fn fault_recovery(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let lan = PathSpec::lan("ESnet LAN", BitRate::gbps(200.0));
    let host = HostConfig::esnet_amd(KernelVersion::L6_8);
    let secs = effort.lan_secs();
    // Fault starts 40% into the run and lasts 10% of it (min 50 ms),
    // leaving plenty of post-fault runway for recovery to show.
    let at = SimDuration::from_millis(secs * 400);
    let dur = SimDuration::from_millis((secs * 100).max(50));
    // No omit window: the fault and its recovery must be measured.
    let opts = Iperf3Opts::new(secs).omit(0);
    let plans = vec![
        ("clean", FaultPlan::none()),
        ("bursty-loss", FaultPlan::none().with_bursty_loss(at, dur, 0.3)),
        ("link-flap", FaultPlan::none().with_link_flap(at, dur)),
        ("receiver-stall", FaultPlan::none().with_receiver_stall(at, dur)),
        ("pause-storm", FaultPlan::none().with_pause_storm(at, dur)),
    ];
    let grid = plans
        .into_iter()
        .map(|(label, plan)| {
            let sc = Scenario::symmetric(label, host.clone(), lan.clone(), opts.clone())
                .with_faults(plan);
            (label.to_string(), vec![sc])
        })
        .collect();
    vec![throughput_figure(
        "Robustness: throughput under injected faults (ESnet LAN, single stream)",
        vec!["LAN".into()],
        grid,
        ctx,
    )]
}

/// Flow counts the fan-in study sweeps (the paper stops at `-P 16`).
pub const SCALE_FLOWS: [usize; 3] = [16, 64, 256];

/// Scale study: N identical host-pairs (16/64/256) converging on one
/// shared 100 G switch egress, with and without 802.3x pause at the
/// receiver edge — the paper's Fig. 9–11 parallel-stream axis extended
/// toward the ROADMAP's fleet-scale direction. Each pair gets its own
/// IRQ + app core (see [`Testbeds::fanin_host`]), so the shared egress
/// buffer, not any host CPU, is the contended resource.
pub fn scale_fanin(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let secs = effort.scale_secs();
    let mk = |pause: bool| {
        let label = if pause { "802.3x pause" } else { "no pause" };
        let scenarios = SCALE_FLOWS
            .iter()
            .map(|&n| {
                Scenario::symmetric(
                    format!("{label} P{n}"),
                    Testbeds::fanin_host(n),
                    Testbeds::fanin_path(pause),
                    Iperf3Opts::new(secs).omit(1).parallel(n),
                )
            })
            .collect();
        (label.to_string(), scenarios)
    };
    let grid = vec![mk(false), mk(true)];
    vec![throughput_figure(
        "Scale: N host-pairs through one shared 100G switch (fan-in)",
        SCALE_FLOWS.iter().map(|n| format!("{n} flows")).collect(),
        grid,
        ctx,
    )]
}
