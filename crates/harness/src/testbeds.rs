//! The two testbeds (Figs. 1–2), as calibrated path + host presets.
//!
//! * **AmLight** (Fig. 1): Intel Xeon 6346 hosts with ConnectX-5
//!   (100 GbE), run in the tuned passthrough VM; a LAN segment plus
//!   real WAN loops at 25, 54 and 104 ms that share the path with
//!   ~16 Gbps of production traffic. WAN *testing* was capped at
//!   80 Gbps (a test-design constraint — experiments pace themselves
//!   below it; the physical path is 100 G).
//! * **ESnet** (Fig. 2): AMD EPYC 73F3 hosts with ConnectX-7
//!   (200 GbE) behind an Edgecore AS9716-32D (64 MB shared buffer);
//!   LAN plus an isolated WAN loop (we use 63 ms, matching the
//!   production-DTN RTT the paper quotes — the testbed loop RTT is not
//!   given). No competing traffic (§IV-C), no 802.3x on the switches.
//! * **ESnet production DTNs** (Table III): 100 GbE hosts on the
//!   production backbone at 63 ms, 802.3x flow control on the edge,
//!   light bursty cross traffic on the transit path.

use linuxhost::{CoreAllocation, HostConfig, KernelVersion};
use nethw::{CrossTrafficSpec, PathSpec};
use simcore::{BitRate, Bytes, SimDuration};

/// AmLight path selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmLightPath {
    /// Same-site 100 G LAN.
    Lan,
    /// WAN loop at 25 ms RTT.
    Wan25ms,
    /// WAN loop at 54 ms RTT.
    Wan54ms,
    /// WAN loop at 104 ms RTT.
    Wan104ms,
}

impl AmLightPath {
    /// All paths, LAN first (the x-axis of Figs. 5, 7, 9, 11, 13).
    pub const ALL: [AmLightPath; 4] =
        [AmLightPath::Lan, AmLightPath::Wan25ms, AmLightPath::Wan54ms, AmLightPath::Wan104ms];

    /// RTT in milliseconds (0 = LAN).
    pub fn rtt_ms(self) -> u64 {
        match self {
            AmLightPath::Lan => 0,
            AmLightPath::Wan25ms => 25,
            AmLightPath::Wan54ms => 54,
            AmLightPath::Wan104ms => 104,
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            AmLightPath::Lan => "LAN",
            AmLightPath::Wan25ms => "25ms",
            AmLightPath::Wan54ms => "54ms",
            AmLightPath::Wan104ms => "104ms",
        }
    }
}

/// ESnet testbed path selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EsnetPath {
    /// 200 G LAN through the AS9716-32D.
    Lan,
    /// The testbed WAN loop (63 ms assumed; see module docs).
    Wan,
}

impl EsnetPath {
    /// Both paths.
    pub const ALL: [EsnetPath; 2] = [EsnetPath::Lan, EsnetPath::Wan];

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            EsnetPath::Lan => "LAN",
            EsnetPath::Wan => "WAN",
        }
    }
}

/// Factory for testbed hosts and paths.
#[derive(Debug, Clone, Copy)]
pub struct Testbeds;

impl Testbeds {
    /// An AmLight host (Intel, CX-5, tuned VM) at the given kernel.
    pub fn amlight_host(kernel: KernelVersion) -> HostConfig {
        HostConfig::amlight_intel(kernel)
    }

    /// An AmLight path.
    pub fn amlight_path(path: AmLightPath) -> PathSpec {
        match path {
            AmLightPath::Lan => PathSpec::lan("AmLight LAN", BitRate::gbps(100.0)),
            wan => PathSpec::wan(
                format!("AmLight {}", wan.label()),
                BitRate::gbps(100.0),
                SimDuration::from_millis(wan.rtt_ms()),
            )
            .with_cross_traffic(CrossTrafficSpec::amlight_production()),
        }
    }

    /// An ESnet testbed host (AMD, CX-7) at the given kernel.
    pub fn esnet_host(kernel: KernelVersion) -> HostConfig {
        HostConfig::esnet_amd(kernel)
    }

    /// An ESnet testbed path.
    pub fn esnet_path(path: EsnetPath) -> PathSpec {
        match path {
            EsnetPath::Lan => PathSpec::lan("ESnet LAN", BitRate::gbps(200.0)),
            EsnetPath::Wan => PathSpec::wan(
                "ESnet WAN",
                BitRate::gbps(200.0),
                SimDuration::from_millis(63),
            ),
        }
    }

    /// An ESnet production DTN host (Table III).
    pub fn prod_dtn_host() -> HostConfig {
        HostConfig::esnet_prod_dtn()
    }

    /// The production DTN path: 100 G, 63 ms, 802.3x at the edge, a
    /// 32 MB transit buffer and light production bursts.
    pub fn prod_dtn_path() -> PathSpec {
        PathSpec::wan("ESnet production 63ms", BitRate::gbps(100.0), SimDuration::from_millis(63))
            .with_flow_control()
            .with_switch_buffer(Bytes::mib(32))
            .with_cross_traffic(CrossTrafficSpec {
                mean_rate: BitRate::gbps(1.5),
                burst_rate: BitRate::gbps(20.0),
                mean_burst: SimDuration::from_millis(2),
            })
    }

    /// An aggregate endpoint standing in for `pairs` identical
    /// host-pairs feeding one shared switch (the `ext_scale`
    /// experiment). Each pair contributes one dedicated IRQ core and
    /// one dedicated app core, so no single host CPU is the contended
    /// resource — only the shared egress below is.
    pub fn fanin_host(pairs: usize) -> HostConfig {
        let n = pairs as u32;
        let mut host = HostConfig::esnet_amd(KernelVersion::L6_8);
        host.name = format!("fanin-{pairs}pair");
        host.cores = CoreAllocation {
            irq_cores: (0..n).collect(),
            app_cores: (n..2 * n).collect(),
            irqbalance: false,
        };
        host
    }

    /// The shared fan-in switch: every pair converges on one 100 G
    /// egress behind a 64 MB shared buffer at a metro 10 ms RTT.
    /// `pause` enables 802.3x at the receiver edge (arrivals park
    /// upstream instead of overflowing the ring).
    pub fn fanin_path(pause: bool) -> PathSpec {
        let p = PathSpec::wan(
            if pause { "fan-in 100G pause" } else { "fan-in 100G" },
            BitRate::gbps(100.0),
            SimDuration::from_millis(10),
        )
        .with_switch_buffer(Bytes::mib(64));
        if pause {
            p.with_flow_control()
        } else {
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amlight_paths() {
        assert_eq!(AmLightPath::ALL.len(), 4);
        let lan = Testbeds::amlight_path(AmLightPath::Lan);
        assert!(!lan.is_wan());
        assert!(lan.cross_traffic.is_none(), "LAN is clean");
        let wan = Testbeds::amlight_path(AmLightPath::Wan104ms);
        assert!(wan.is_wan());
        assert_eq!(wan.rtt, SimDuration::from_millis(104));
        assert!(wan.cross_traffic.is_some(), "WAN shares with production");
    }

    #[test]
    fn esnet_paths_are_clean() {
        let wan = Testbeds::esnet_path(EsnetPath::Wan);
        assert!(wan.cross_traffic.is_none(), "isolated testbed (SIV-C)");
        assert!(!wan.flow_control, "switches lack 802.3x (SIII-F)");
        assert_eq!(wan.bottleneck.as_gbps(), 200.0);
        assert_eq!(wan.switch_buffer, Bytes::mib(64));
    }

    #[test]
    fn prod_path_has_flow_control() {
        let p = Testbeds::prod_dtn_path();
        assert!(p.flow_control);
        assert!(p.cross_traffic.is_some());
        assert_eq!(p.rtt, SimDuration::from_millis(63));
    }

    #[test]
    fn hosts_match_testbed_hardware() {
        let am = Testbeds::amlight_host(KernelVersion::L6_8);
        assert_eq!(am.cpu, linuxhost::CpuArch::IntelXeon6346);
        assert_eq!(am.nic, nethw::NicModel::ConnectX5);
        let es = Testbeds::esnet_host(KernelVersion::L6_8);
        assert_eq!(es.cpu, linuxhost::CpuArch::AmdEpyc73F3);
        assert_eq!(es.nic, nethw::NicModel::ConnectX7);
    }
}
