//! Typed simulation errors.
//!
//! Every failure the simulator can produce — an invalid configuration,
//! a livelocked event loop, a broken accounting invariant — is a
//! [`SimError`] variant carrying enough structure for the harness to
//! report, retry, or degrade without parsing strings.

use simcore::{SimTime, WatchdogTrip};
use std::fmt;

/// Why a simulation refused to start or failed to finish cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed validation; each string is one problem
    /// in the iperf3-error style the CLI surfaces verbatim.
    InvalidConfig(Vec<String>),
    /// The event loop stopped making progress (livelock or runaway
    /// event population) and was killed by the watchdog.
    Stalled {
        /// Simulated time the run had reached when the watchdog fired.
        at: SimTime,
        /// What the watchdog observed.
        trip: WatchdogTrip,
    },
    /// An internal invariant the event loop relies on was violated
    /// (a peeked event vanished, a sender ran ahead of its app-write
    /// bookkeeping, a ledger disappeared mid-run). Previously these
    /// were hot-path panics that killed the whole worker; as a typed
    /// error the harness records the rep as failed and carries on.
    StateCorruption {
        /// Simulated time at which the corruption was detected.
        at: SimTime,
        /// Which invariant broke.
        what: String,
    },
    /// End-of-run burst accounting did not balance: every burst put on
    /// the wire must be delivered, dropped (with a counted cause), or
    /// still in flight when the clock stops.
    ConservationViolation {
        /// Bursts handed to the wire (including retransmissions).
        wire_sent: u64,
        /// Bursts that reached a receiver (including duplicates).
        delivered: u64,
        /// Bursts dropped with an attributed cause (switch + ring +
        /// random + fault drops).
        dropped: u64,
        /// Bursts still inside the pipeline (queued events and
        /// pause-parked arrivals) when the run ended.
        in_flight: u64,
    },
}

impl SimError {
    /// True if this error came from config validation (caller bug)
    /// rather than a runtime failure.
    pub fn is_config_error(&self) -> bool {
        matches!(self, SimError::InvalidConfig(_))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(problems) => {
                write!(f, "invalid configuration: {}", problems.join("; "))
            }
            SimError::Stalled { at, trip } => {
                write!(f, "simulation stalled at t={at}: {trip}")
            }
            SimError::StateCorruption { at, what } => {
                write!(f, "simulation state corrupted at t={at}: {what}")
            }
            SimError::ConservationViolation { wire_sent, delivered, dropped, in_flight } => write!(
                f,
                "burst conservation violated: sent {wire_sent} != delivered {delivered} \
                 + dropped {dropped} + in-flight {in_flight} (= {})",
                delivered + dropped + in_flight
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::InvalidConfig(vec!["zero duration".into(), "no flows".into()]);
        assert!(e.to_string().contains("zero duration"));
        assert!(e.is_config_error());

        let e = SimError::Stalled {
            at: SimTime::from_nanos(7),
            trip: WatchdogTrip::Livelock { at: SimTime::from_nanos(7), events: 99 },
        };
        assert!(e.to_string().contains("stalled"));
        assert!(e.to_string().contains("livelock"));
        assert!(!e.is_config_error());

        let e = SimError::StateCorruption {
            at: SimTime::from_nanos(3),
            what: "peeked event vanished".into(),
        };
        assert!(e.to_string().contains("corrupted"));
        assert!(e.to_string().contains("peeked event vanished"));
        assert!(!e.is_config_error());

        let e = SimError::ConservationViolation {
            wire_sent: 10,
            delivered: 4,
            dropped: 3,
            in_flight: 2,
        };
        assert!(e.to_string().contains("conservation"));
        assert!(e.to_string().contains("= 9"));
    }
}
