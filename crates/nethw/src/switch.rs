//! Shared-buffer output-queued switch.
//!
//! Models the Edgecore AS9716-32D used on the ESnet testbed (64 MB of
//! buffer shared by all ports) and the NoviFlow/Tofino switches at
//! AmLight. Arriving bursts are placed in the egress queue of their
//! output port if the *shared* buffer has room; otherwise they are
//! tail-dropped. Each egress port drains at its line rate. With 802.3x
//! enabled, occupancy past the XOFF mark pauses upstream senders
//! instead of dropping.

use crate::pause::{PauseState, PauseThresholds};
use simcore::{BitRate, Bytes, SimDuration, SimRng, SimTime};

/// WRED-style early-drop parameters: arrivals are dropped with a
/// probability ramping from 0 at `min_frac` occupancy to `max_p` at
/// `max_frac`. Spreads congestion losses across flows instead of the
/// synchronized tail-drop bursts a full buffer produces — typical of
/// carrier/production transit gear, not of the tail-drop testbed
/// switches.
#[derive(Debug, Clone, Copy)]
pub struct RedParams {
    /// Occupancy fraction where early drop begins.
    pub min_frac: f64,
    /// Occupancy fraction where drop probability reaches `max_p`.
    pub max_frac: f64,
    /// Maximum early-drop probability.
    pub max_p: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        RedParams { min_frac: 0.30, max_frac: 0.90, max_p: 0.35 }
    }
}

/// Result of offering a burst to the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Burst accepted; it completes egress serialisation at this time.
    Queued {
        /// Absolute time the last bit leaves the egress port.
        departs_at: SimTime,
    },
    /// Shared buffer exhausted; burst tail-dropped.
    Dropped,
}

/// One egress port's state.
#[derive(Debug, Clone)]
struct Port {
    rate: BitRate,
    /// Time the port finishes serialising everything queued so far.
    busy_until: SimTime,
    queued: Bytes,
    forwarded: Bytes,
    drops: u64,
}

/// A shared-buffer switch with `n` egress ports.
#[derive(Debug, Clone)]
pub struct SharedBufferSwitch {
    buffer_capacity: Bytes,
    occupancy: Bytes,
    ports: Vec<Port>,
    pause: Option<PauseState>,
    red: Option<RedParams>,
}

impl SharedBufferSwitch {
    /// New switch. `port_rates[i]` is egress port `i`'s line rate.
    /// `flow_control` enables 802.3x pause on the shared buffer.
    pub fn new(buffer_capacity: Bytes, port_rates: &[BitRate], flow_control: bool) -> Self {
        assert!(!port_rates.is_empty(), "switch needs at least one port");
        assert!(!buffer_capacity.is_zero(), "switch needs buffer");
        SharedBufferSwitch {
            buffer_capacity,
            occupancy: Bytes::ZERO,
            ports: port_rates
                .iter()
                .map(|&rate| Port {
                    rate,
                    busy_until: SimTime::ZERO,
                    queued: Bytes::ZERO,
                    forwarded: Bytes::ZERO,
                    drops: 0,
                })
                .collect(),
            pause: flow_control
                .then(|| PauseState::new(buffer_capacity, PauseThresholds::default())),
            red: None,
        }
    }

    /// Enable WRED-style early drop.
    pub fn with_red(mut self, red: RedParams) -> Self {
        self.red = Some(red);
        self
    }

    /// Early-drop decision for an arrival at the current occupancy.
    /// Call before [`Self::enqueue`] when RED is enabled.
    pub fn red_drop(&self, rng: &mut SimRng) -> bool {
        let Some(red) = self.red else { return false };
        let frac = self.occupancy.as_f64() / self.buffer_capacity.as_f64();
        if frac <= red.min_frac {
            return false;
        }
        let p = if frac >= red.max_frac {
            red.max_p
        } else {
            red.max_p * (frac - red.min_frac) / (red.max_frac - red.min_frac)
        };
        rng.chance(p)
    }

    /// Whether RED is configured.
    pub fn has_red(&self) -> bool {
        self.red.is_some()
    }

    /// Offer a burst for egress on `port` at time `now`.
    ///
    /// On success the caller must schedule a departure event at the
    /// returned time and then call [`Self::departed`].
    pub fn enqueue(&mut self, port: usize, bytes: Bytes, now: SimTime) -> EnqueueOutcome {
        let free = self.buffer_capacity.saturating_sub(self.occupancy);
        if bytes > free {
            self.ports[port].drops += 1;
            self.update_pause();
            return EnqueueOutcome::Dropped;
        }
        self.occupancy += bytes;
        let p = &mut self.ports[port];
        p.queued += bytes;
        let start = p.busy_until.max(now);
        let departs_at = start + p.rate.serialize_time(bytes);
        p.busy_until = departs_at;
        self.update_pause();
        EnqueueOutcome::Queued { departs_at }
    }

    /// Record that a previously queued burst finished egress.
    pub fn departed(&mut self, port: usize, bytes: Bytes) {
        let p = &mut self.ports[port];
        debug_assert!(bytes <= p.queued, "departing more than queued");
        p.queued = p.queued.saturating_sub(bytes);
        p.forwarded += bytes;
        self.occupancy = self.occupancy.saturating_sub(bytes);
        self.update_pause();
    }

    /// Steal egress capacity on `port`: push its availability forward by
    /// `dur` (used by the cross-traffic model to occupy the bottleneck).
    pub fn consume_egress(&mut self, port: usize, dur: SimDuration, now: SimTime) {
        let p = &mut self.ports[port];
        p.busy_until = p.busy_until.max(now) + dur;
    }

    /// Current shared-buffer occupancy.
    pub fn occupancy(&self) -> Bytes {
        self.occupancy
    }

    /// Shared buffer capacity.
    pub fn buffer_capacity(&self) -> Bytes {
        self.buffer_capacity
    }

    /// Is 802.3x currently asserting pause toward senders?
    pub fn is_pausing(&self) -> bool {
        self.pause.as_ref().is_some_and(|p| p.is_paused())
    }

    /// Whether this switch was built with flow control.
    pub fn flow_control(&self) -> bool {
        self.pause.is_some()
    }

    /// Total bursts dropped on a port.
    pub fn drops(&self, port: usize) -> u64 {
        self.ports[port].drops
    }

    /// Total drops across all ports.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.drops).sum()
    }

    /// Bytes forwarded through a port.
    pub fn forwarded(&self, port: usize) -> Bytes {
        self.ports[port].forwarded
    }

    /// Queue depth (bytes) on a port.
    pub fn port_queue(&self, port: usize) -> Bytes {
        self.ports[port].queued
    }

    /// Queueing delay currently faced by a new arrival on `port`.
    pub fn port_backlog_delay(&self, port: usize, now: SimTime) -> SimDuration {
        self.ports[port].busy_until.saturating_since(now)
    }

    fn update_pause(&mut self) {
        if let Some(p) = &mut self.pause {
            p.update(self.occupancy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch_100g(buffer: Bytes, fc: bool) -> SharedBufferSwitch {
        SharedBufferSwitch::new(buffer, &[BitRate::gbps(100.0)], fc)
    }

    #[test]
    fn queues_serialise_fifo() {
        let mut sw = switch_100g(Bytes::mib(64), false);
        let t0 = SimTime::ZERO;
        let b = Bytes::kib(64);
        let EnqueueOutcome::Queued { departs_at: d1 } = sw.enqueue(0, b, t0) else {
            panic!("drop")
        };
        let EnqueueOutcome::Queued { departs_at: d2 } = sw.enqueue(0, b, t0) else {
            panic!("drop")
        };
        // Second burst waits for the first: departures are spaced by one
        // serialisation time.
        assert_eq!((d2 - d1).as_nanos(), BitRate::gbps(100.0).serialize_time(b).as_nanos());
        assert_eq!(sw.occupancy(), Bytes::kib(128));
        sw.departed(0, b);
        sw.departed(0, b);
        assert_eq!(sw.occupancy(), Bytes::ZERO);
        assert_eq!(sw.forwarded(0).as_u64(), Bytes::kib(128).as_u64());
    }

    #[test]
    fn tail_drop_when_shared_buffer_full() {
        let mut sw = switch_100g(Bytes::kib(100), false);
        assert!(matches!(
            sw.enqueue(0, Bytes::kib(64), SimTime::ZERO),
            EnqueueOutcome::Queued { .. }
        ));
        // 64 KiB used of 100 KiB: another 64 KiB cannot fit.
        assert_eq!(sw.enqueue(0, Bytes::kib(64), SimTime::ZERO), EnqueueOutcome::Dropped);
        assert_eq!(sw.total_drops(), 1);
    }

    #[test]
    fn shared_buffer_is_shared_across_ports() {
        let rates = [BitRate::gbps(100.0), BitRate::gbps(100.0)];
        let mut sw = SharedBufferSwitch::new(Bytes::kib(100), &rates, false);
        sw.enqueue(0, Bytes::kib(64), SimTime::ZERO);
        // Port 1 is idle but the shared pool is nearly gone.
        assert_eq!(sw.enqueue(1, Bytes::kib(64), SimTime::ZERO), EnqueueOutcome::Dropped);
    }

    #[test]
    fn pause_asserts_with_flow_control() {
        let mut sw = switch_100g(Bytes::kib(100), true);
        assert!(!sw.is_pausing());
        sw.enqueue(0, Bytes::kib(90), SimTime::ZERO); // 90 % > XOFF
        assert!(sw.is_pausing());
        sw.departed(0, Bytes::kib(90));
        assert!(!sw.is_pausing());
    }

    #[test]
    fn no_pause_without_flow_control() {
        let mut sw = switch_100g(Bytes::kib(100), false);
        sw.enqueue(0, Bytes::kib(90), SimTime::ZERO);
        assert!(!sw.is_pausing());
        assert!(!sw.flow_control());
    }

    #[test]
    fn consume_egress_delays_later_arrivals() {
        let mut sw = switch_100g(Bytes::mib(64), false);
        sw.consume_egress(0, SimDuration::from_micros(100), SimTime::ZERO);
        let EnqueueOutcome::Queued { departs_at } = sw.enqueue(0, Bytes::kib(64), SimTime::ZERO)
        else {
            panic!("drop")
        };
        assert!(departs_at.as_nanos() >= 100_000);
    }

    #[test]
    fn backlog_delay_reflects_queue() {
        let mut sw = switch_100g(Bytes::mib(64), false);
        assert!(sw.port_backlog_delay(0, SimTime::ZERO).is_zero());
        sw.enqueue(0, Bytes::mib(1), SimTime::ZERO);
        assert!(!sw.port_backlog_delay(0, SimTime::ZERO).is_zero());
        assert_eq!(sw.port_queue(0), Bytes::mib(1));
    }
}
