//! Segmentation-offload configuration: GSO/GRO sizing, BIG TCP, MTU.
//!
//! The stack hands the NIC "super-packets" of up to `gso_max_size`
//! bytes; the NIC slices them to MTU on the wire (TSO) and the receive
//! side re-aggregates (GRO). Stock super-packets are capped at 64 KB;
//! BIG TCP (§II-C) raises the cap — the paper tests 150 KB via
//! `ip link set ... gso_ipv4_max_size 150000 gro_ipv4_max_size 150000`.
//!
//! BIG TCP and MSG_ZEROCOPY both consume skb fragment slots, so they
//! cannot be combined unless the kernel is built with
//! `CONFIG_MAX_SKB_FRAGS=45` (§II-C / §V-C).

use crate::kernel::KernelVersion;
use simcore::Bytes;

/// IP version carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddrFamily {
    /// IPv4 (the paper reports IPv4 numbers).
    #[default]
    V4,
    /// IPv6 — 20 bytes more header per packet, slightly larger BIG TCP
    /// ceilings, earlier kernel support (5.19 vs 6.3).
    V6,
}

impl AddrFamily {
    /// IP + TCP header bytes per wire packet (no options).
    pub fn header_bytes(self) -> u64 {
        match self {
            AddrFamily::V4 => 20 + 20,
            AddrFamily::V6 => 40 + 20,
        }
    }
}

/// Default GSO/GRO super-packet ceiling (64 KB minus headers; we use
/// the round figure the paper quotes).
pub const DEFAULT_GSO_SIZE: Bytes = Bytes::new(65_536);

/// The BIG TCP size used throughout the paper's evaluation.
pub const PAPER_BIG_TCP_SIZE: Bytes = Bytes::new(150_000);

/// Maximum BIG TCP size supported (IPv4; IPv6 allows slightly more).
pub const MAX_BIG_TCP_SIZE: Bytes = Bytes::new(524_280);

/// Stock `MAX_SKB_FRAGS`.
pub const DEFAULT_MAX_SKB_FRAGS: u32 = 17;

/// Offload configuration for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadConfig {
    /// GSO super-packet ceiling (send side).
    pub gso_max_size: Bytes,
    /// GRO aggregation ceiling (receive side).
    pub gro_max_size: Bytes,
    /// Interface MTU (paper: 9000).
    pub mtu: Bytes,
    /// Kernel build constant `CONFIG_MAX_SKB_FRAGS` (17 stock, 45 for
    /// the custom BIG TCP + zerocopy kernel).
    pub max_skb_frags: u32,
    /// Hardware GRO / header-data split enabled on the NIC (§V-C).
    pub hw_gro: bool,
    /// IP version (affects per-packet header overhead and BIG TCP
    /// gates; §II-C found no significant v4/v6 difference).
    pub addr_family: AddrFamily,
}

impl OffloadConfig {
    /// Stock offload configuration at the given MTU.
    pub fn standard(mtu: Bytes) -> Self {
        assert!(mtu.as_u64() >= 1280, "MTU below IPv6 minimum");
        OffloadConfig {
            gso_max_size: DEFAULT_GSO_SIZE,
            gro_max_size: DEFAULT_GSO_SIZE,
            mtu,
            max_skb_frags: DEFAULT_MAX_SKB_FRAGS,
            hw_gro: false,
            addr_family: AddrFamily::V4,
        }
    }

    /// The paper's default setup: 9000-byte MTU, standard 64 KB offload.
    pub fn paper_default() -> Self {
        Self::standard(Bytes::new(9000))
    }

    /// Builder: carry IPv6 instead of IPv4.
    pub fn with_ipv6(mut self) -> Self {
        self.addr_family = AddrFamily::V6;
        self
    }

    /// Wire bytes for a payload burst: payload plus per-packet IP/TCP
    /// headers at the configured family.
    pub fn wire_bytes(&self, payload: Bytes) -> Bytes {
        let pkts = payload.packets_at_mtu(self.mtu);
        Bytes::new(payload.as_u64() + pkts * self.addr_family.header_bytes())
    }

    /// Enable BIG TCP at `size` (both GSO and GRO). Panics if the
    /// kernel does not support BIG TCP for the configured address
    /// family or the size is out of range — invalid experiment
    /// definitions should fail loudly.
    pub fn with_big_tcp(mut self, size: Bytes, kernel: KernelVersion) -> Self {
        match self.addr_family {
            AddrFamily::V4 => assert!(
                kernel.supports_big_tcp_ipv4(),
                "kernel {kernel} lacks BIG TCP for IPv4 (needs >= 6.3)"
            ),
            AddrFamily::V6 => assert!(
                kernel.supports_big_tcp_ipv6(),
                "kernel {kernel} lacks BIG TCP for IPv6 (needs >= 5.19)"
            ),
        }
        assert!(
            size > DEFAULT_GSO_SIZE && size <= MAX_BIG_TCP_SIZE,
            "BIG TCP size must be in (64 KB, 512 KB]"
        );
        self.gso_max_size = size;
        self.gro_max_size = size;
        self
    }

    /// Build the custom kernel: `CONFIG_MAX_SKB_FRAGS=45`.
    pub fn with_max_skb_frags(mut self, frags: u32, kernel: KernelVersion) -> Self {
        assert!(
            kernel.supports_max_skb_frags_config(),
            "kernel {kernel} has no CONFIG_MAX_SKB_FRAGS tunable"
        );
        assert!((17..=45).contains(&frags), "MAX_SKB_FRAGS out of supported range");
        self.max_skb_frags = frags;
        self
    }

    /// Enable hardware GRO (needs kernel ≥ 6.11; NIC support is checked
    /// by `nethw::Nic`).
    pub fn with_hw_gro(mut self, kernel: KernelVersion) -> Self {
        assert!(kernel.supports_hw_gro(), "kernel {kernel} lacks mlx5 hardware GRO");
        self.hw_gro = true;
        self
    }

    /// Is BIG TCP active (super-packets above the stock 64 KB)?
    pub fn big_tcp_active(&self) -> bool {
        self.gso_max_size > DEFAULT_GSO_SIZE || self.gro_max_size > DEFAULT_GSO_SIZE
    }

    /// Can MSG_ZEROCOPY be used together with this offload config?
    ///
    /// Stock kernels: BIG TCP and zerocopy both need skb fragment slots
    /// and cannot be combined (§II-C); a `MAX_SKB_FRAGS=45` build can.
    pub fn zerocopy_compatible(&self) -> bool {
        !self.big_tcp_active() || self.max_skb_frags >= 45
    }

    /// Wire packets per full-size super-packet.
    pub fn packets_per_burst(&self) -> u64 {
        self.gso_max_size.packets_at_mtu(self.mtu)
    }
}

impl simcore::Canonicalize for OffloadConfig {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_u64("gso_max_size", self.gso_max_size.as_u64());
        c.put_u64("gro_max_size", self.gro_max_size.as_u64());
        c.put_u64("mtu", self.mtu.as_u64());
        c.put_u64("max_skb_frags", self.max_skb_frags as u64);
        c.put_bool("hw_gro", self.hw_gro);
        c.put_str("addr_family", match self.addr_family {
            AddrFamily::V4 => "v4",
            AddrFamily::V6 => "v6",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config() {
        let c = OffloadConfig::paper_default();
        assert_eq!(c.gso_max_size, DEFAULT_GSO_SIZE);
        assert_eq!(c.mtu.as_u64(), 9000);
        assert!(!c.big_tcp_active());
        assert!(c.zerocopy_compatible());
        assert_eq!(c.packets_per_burst(), 8); // ceil(65536/9000)
    }

    #[test]
    fn big_tcp_at_paper_size() {
        let c = OffloadConfig::paper_default()
            .with_big_tcp(PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
        assert!(c.big_tcp_active());
        assert_eq!(c.gso_max_size.as_u64(), 150_000);
        assert!(!c.zerocopy_compatible(), "stock frags: BIG TCP excludes zerocopy");
        assert_eq!(c.packets_per_burst(), 17);
    }

    #[test]
    fn custom_kernel_allows_both() {
        let c = OffloadConfig::paper_default()
            .with_big_tcp(PAPER_BIG_TCP_SIZE, KernelVersion::L6_8)
            .with_max_skb_frags(45, KernelVersion::L6_8);
        assert!(c.zerocopy_compatible());
    }

    #[test]
    #[should_panic(expected = "lacks BIG TCP")]
    fn big_tcp_rejected_on_5_15() {
        let _ = OffloadConfig::paper_default()
            .with_big_tcp(PAPER_BIG_TCP_SIZE, KernelVersion::L5_15);
    }

    #[test]
    #[should_panic(expected = "lacks mlx5 hardware GRO")]
    fn hw_gro_rejected_before_6_11() {
        let _ = OffloadConfig::paper_default().with_hw_gro(KernelVersion::L6_8);
    }

    #[test]
    fn hw_gro_allowed_on_6_11() {
        let c = OffloadConfig::paper_default().with_hw_gro(KernelVersion::L6_11);
        assert!(c.hw_gro);
    }

    #[test]
    #[should_panic(expected = "(64 KB, 512 KB]")]
    fn oversized_big_tcp_rejected() {
        let _ = OffloadConfig::paper_default()
            .with_big_tcp(Bytes::mib(1), KernelVersion::L6_8);
    }

    #[test]
    fn ipv6_adds_header_overhead() {
        let v4 = OffloadConfig::paper_default();
        let v6 = OffloadConfig::paper_default().with_ipv6();
        let payload = Bytes::kib(64);
        let w4 = v4.wire_bytes(payload).as_u64();
        let w6 = v6.wire_bytes(payload).as_u64();
        assert_eq!(w4, 65_536 + 8 * 40);
        assert_eq!(w6, 65_536 + 8 * 60);
        // The whole v4/v6 difference is ~0.2 % of wire bytes at 9000
        // MTU — SII-C's "no significant difference" in miniature.
        assert!((w6 as f64 / w4 as f64) < 1.005);
    }

    #[test]
    fn big_tcp_v6_gate() {
        // IPv6 BIG TCP is fine on 6.5 (landed in 5.19).
        let c = OffloadConfig::paper_default()
            .with_ipv6()
            .with_big_tcp(PAPER_BIG_TCP_SIZE, KernelVersion::L6_5);
        assert!(c.big_tcp_active());
    }

    #[test]
    fn mtu_1500_burst_packets() {
        let c = OffloadConfig::standard(Bytes::new(1500));
        assert_eq!(c.packets_per_burst(), 44); // ceil(65536/1500)
    }
}
