//! Root facade; see README. Re-exports the `dtnperf` public API.
pub use dtnperf::*;
