//! Chaos soak and supervision-contract tests.
//!
//! The recovery contract under attack: a seeded chaos schedule
//! (`REPRO_CHAOS`) kills workers mid-run, poisons freshly stored cache
//! entries, and fails trace writes — and the harness must lose no
//! repetition, duplicate no result, self-heal the cache, and leave
//! every report bit-identical to a chaos-free run. Alongside the soak,
//! this suite pins the typed failure taxonomy: watchdog trips carry
//! the class the retry policy keys on at every effort level, a dry
//! error budget blocks retries without losing the failure record, and
//! [`FailedRep`] round-trips through the degraded-run manifest JSON.

use dtnperf::prelude::*;
use dtnperf::simcore::{derive_seed, SimRng, WatchdogTrip};
use harness::supervise::{ErrorBudget, ErrorClass, RetryPolicy, Supervisor};
use harness::{ChaosPlan, FailedRep, RunLedger, ScenarioError, TestSummary};
use iperf3sim::RunError;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SOAK_REPS: usize = 8;
const SOAK_BASE_SEED: u64 = 77;
const SOAK_CHAOS_SEED: u64 = 4242;

fn esnet_host() -> HostConfig {
    Testbeds::esnet_host(KernelVersion::L6_8)
}

fn lan_scenario(label: &str) -> Scenario {
    Scenario::symmetric(
        label,
        esnet_host(),
        Testbeds::esnet_path(EsnetPath::Lan),
        Iperf3Opts::new(2).omit(0),
    )
}

fn soak_scenarios() -> Vec<Scenario> {
    vec![
        lan_scenario("soak_lan"),
        Scenario::symmetric(
            "soak_wan_zc",
            esnet_host(),
            Testbeds::esnet_path(EsnetPath::Wan),
            Iperf3Opts::new(3).omit(1).zerocopy(),
        ),
    ]
}

/// Bit-exact rendering of a summary's reports: Rust's f64 `Debug`
/// formatting is shortest-round-trip exact, so equal strings ⇔ equal
/// bits, and `to_json` covers the rendered artefact bytes.
fn report_bytes(s: &TestSummary) -> String {
    s.reports
        .iter()
        .map(|r| format!("{r:?}\n{}", r.to_json()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A fixed-name scratch directory (fixed so the chaos trace-failure
/// schedule, which hashes paths, is the same on every run), cleared of
/// leftovers from a previous run.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn chaos_soak_loses_nothing_and_matches_clean_runs() {
    let scenarios = soak_scenarios();
    let clean: Vec<TestSummary> = TestHarness::new(SOAK_REPS)
        .with_base_seed(SOAK_BASE_SEED)
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("clean run"))
        .collect();

    let chaos = Arc::new(ChaosPlan::new(SOAK_CHAOS_SEED));
    let supervisor = Supervisor::default().with_chaos(chaos.clone());

    // Harness 1: content-addressed cache under attack — every fresh
    // store is a poisoning candidate — plus scheduled worker kills.
    let cache_dir = scratch_dir("repro_chaos_soak_cache");
    let cache = Arc::new(RunCache::new(&cache_dir));
    let mut cached_h = TestHarness::new(SOAK_REPS)
        .with_base_seed(SOAK_BASE_SEED)
        .with_supervisor(supervisor.clone());
    cached_h.cache = Some(cache.clone());
    let cached: Vec<TestSummary> = cached_h
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("chaos cached run"))
        .collect();

    // Harness 2: trace writes under attack. Traced runs carry
    // observers (telemetry + attribution), so their bit-identity
    // reference is a chaos-free *traced* run, not the plain one.
    let clean_trace_dir = scratch_dir("repro_chaos_soak_traces_clean");
    let clean_traced: Vec<TestSummary> = TestHarness::new(SOAK_REPS)
        .with_base_seed(SOAK_BASE_SEED)
        .with_trace_dir(&clean_trace_dir)
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("clean traced run"))
        .collect();
    let trace_dir = scratch_dir("repro_chaos_soak_traces");
    let traced: Vec<TestSummary> = TestHarness::new(SOAK_REPS)
        .with_base_seed(SOAK_BASE_SEED)
        .with_supervisor(supervisor)
        .with_trace_dir(&trace_dir)
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("chaos traced run"))
        .collect();

    // Zero lost, zero duplicated: every repetition reported exactly
    // once, no failure records left behind.
    for s in cached.iter().chain(&traced) {
        assert_eq!(s.reports.len(), SOAK_REPS, "'{}' lost repetitions", s.label);
        assert!(
            s.failed_reps.is_empty(),
            "'{}' recorded failures under chaos: {:?}",
            s.label,
            s.failed_reps
        );
    }
    // ...and the run ledger accounts for all four harness passes.
    let records = RunLedger::global().snapshot();
    for sc in &scenarios {
        let ours: Vec<_> = records.iter().filter(|r| r.label == sc.label).collect();
        assert_eq!(ours.len(), 4, "'{}' ledger records", sc.label);
        assert!(
            ours.iter().all(|r| r.complete() && r.expected == SOAK_REPS),
            "'{}' ledger shows lost repetitions: {ours:?}",
            sc.label
        );
    }

    // Recovery leaves no fingerprint in the results.
    for (a, b) in clean.iter().zip(&cached) {
        assert_eq!(report_bytes(a), report_bytes(b), "'{}': cached chaos run diverged", a.label);
    }
    for (a, b) in clean_traced.iter().zip(&traced) {
        assert_eq!(report_bytes(a), report_bytes(b), "'{}': traced chaos run diverged", a.label);
    }

    // Acceptance floor: ≥20 injected faults, all three classes
    // represented, every kill resumed from a checkpoint (the default
    // cadence is finer than the supervisor's step chunk, so a snapshot
    // always exists by the first possible kill point).
    let stats = &chaos.stats;
    eprintln!("{}", stats.summary());
    assert!(stats.kills() >= 3, "{}", stats.summary());
    assert_eq!(stats.resumes(), stats.kills(), "{}", stats.summary());
    assert!(stats.cache_corruptions() >= 3, "{}", stats.summary());
    assert!(stats.trace_failures() >= 3, "{}", stats.summary());
    assert!(stats.total() >= 20, "acceptance floor: {}", stats.summary());

    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::remove_dir_all(&trace_dir).ok();
    std::fs::remove_dir_all(&clean_trace_dir).ok();
}

#[test]
fn cache_self_heals_under_chaos() {
    const REPS: usize = 4;
    let sc = lan_scenario("heal");
    let base_seed = 505;
    let seeds: Vec<u64> =
        (0..REPS).map(|i| derive_seed(sc.fingerprint(), base_seed, i as u64)).collect();
    // Pick (deterministically) a chaos seed that poisons a strict
    // subset of this scenario's stores: some entries must heal, some
    // must hit clean, so both paths are exercised.
    let chaos_seed = (0..500u64)
        .find(|cs| {
            let p = ChaosPlan::new(*cs);
            let poisoned = seeds.iter().filter(|s| p.cache_damage(**s).is_some()).count();
            (1..REPS).contains(&poisoned)
        })
        .expect("a 50% poison rate hits a strict subset for some seed");
    let poisoned =
        seeds.iter().filter(|s| ChaosPlan::new(chaos_seed).cache_damage(**s).is_some()).count();

    let dir = scratch_dir("repro_chaos_heal_cache");
    let pass = |cache: Arc<RunCache>| {
        let chaos = Arc::new(ChaosPlan::new(chaos_seed));
        let mut h = TestHarness::new(REPS)
            .with_base_seed(base_seed)
            .with_supervisor(Supervisor::default().with_chaos(chaos.clone()));
        h.cache = Some(cache);
        let summary = h.run(&sc).expect("heal pass");
        (summary, chaos)
    };

    // Pass 1: all misses; some freshly stored entries get poisoned.
    let c1 = Arc::new(RunCache::new(&dir));
    let (s1, chaos1) = pass(c1.clone());
    assert_eq!(
        (c1.stats.hits(), c1.stats.misses() as usize, c1.stats.stores() as usize),
        (0, REPS, REPS)
    );
    assert_eq!(chaos1.stats.cache_corruptions() as usize, poisoned);
    assert_eq!(c1.stats.recoveries(), 0);

    // Pass 2: the poisoned entries surface as counted faults, are
    // recomputed, and are re-stored clean — heal stores are exempt
    // from further poisoning, so the cache converges.
    let c2 = Arc::new(RunCache::new(&dir));
    let (s2, chaos2) = pass(c2.clone());
    assert_eq!(c2.stats.hits() as usize, REPS - poisoned);
    assert_eq!(c2.stats.misses() as usize, poisoned);
    assert_eq!(c2.stats.recoveries() as usize, poisoned, "every fault counted");
    assert_eq!(c2.stats.stale_recoveries(), 0, "damage reads as corrupt/truncated, not stale");
    assert_eq!(c2.stats.stores() as usize, poisoned);
    assert_eq!(chaos2.stats.cache_corruptions(), 0, "heal stores must not be re-poisoned");

    // Pass 3: converged — all hits, nothing recomputed or recovered.
    let c3 = Arc::new(RunCache::new(&dir));
    let (s3, _chaos3) = pass(c3.clone());
    assert_eq!(
        (c3.stats.hits() as usize, c3.stats.misses(), c3.stats.stores(), c3.stats.recoveries()),
        (REPS, 0, 0, 0)
    );

    // The healed cache serves bit-identical reports throughout.
    assert_eq!(report_bytes(&s1), report_bytes(&s2));
    assert_eq!(report_bytes(&s2), report_bytes(&s3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_budget_trips_are_classed_and_retried_per_effort() {
    // A 10-event budget trips the watchdog on every seed and every
    // retry: the supervisor must classify it, burn exactly the
    // effort's attempt allowance, and record the failure typed.
    for effort in [Effort::Smoke, Effort::Standard, Effort::Full] {
        let sc = lan_scenario(&format!("watchdog_{effort:?}")).with_event_budget(10);
        let h = TestHarness::new(1).with_supervisor(Supervisor::for_effort(effort));
        let err = h.run(&sc).unwrap_err();
        match err {
            ScenarioError::AllRepetitionsFailed { failures, .. } => {
                assert_eq!(failures.len(), 1, "{effort:?}");
                let f = &failures[0];
                assert_eq!(f.class, ErrorClass::WatchdogBudget, "{effort:?}");
                assert_eq!(f.attempts, effort.retry_attempts(), "{effort:?}: allowance burned");
                assert!(f.error.contains("stalled"), "{effort:?}: {}", f.error);
            }
            other => panic!("{effort:?}: expected AllRepetitionsFailed, got {other}"),
        }
    }
}

#[test]
fn livelock_trips_are_classed_and_retryable_at_every_effort() {
    let livelock = RunError::Sim(SimError::Stalled {
        at: SimTime::from_nanos(1),
        trip: WatchdogTrip::Livelock { at: SimTime::from_nanos(1), events: 99 },
    });
    assert_eq!(ErrorClass::classify(&livelock), ErrorClass::WatchdogLivelock);
    let budget_trip = RunError::Sim(SimError::Stalled {
        at: SimTime::from_nanos(1),
        trip: WatchdogTrip::BudgetExhausted { events: 10, budget: 9 },
    });
    assert_eq!(ErrorClass::classify(&budget_trip), ErrorClass::WatchdogBudget);
    for effort in [Effort::Smoke, Effort::Standard, Effort::Full] {
        let sup = Supervisor::for_effort(effort);
        for class in [ErrorClass::WatchdogBudget, ErrorClass::WatchdogLivelock] {
            assert!(sup.may_retry(class, 1), "{effort:?}/{class:?} must earn a retry");
            assert!(
                !sup.may_retry(class, effort.retry_attempts()),
                "{effort:?}/{class:?} must stop at the attempt cap"
            );
        }
        // A deterministic config rejection never retries, at any effort.
        assert!(!sup.may_retry(ErrorClass::InvalidConfig, 1), "{effort:?}");
    }
}

#[test]
fn dry_budget_records_failures_without_retry() {
    let sc = lan_scenario("dry_budget").with_event_budget(10);
    let sup = Supervisor::default().with_budget(Arc::new(ErrorBudget::new(0)));
    let err = TestHarness::new(2).with_supervisor(sup).run(&sc).unwrap_err();
    match err {
        ScenarioError::AllRepetitionsFailed { failures, .. } => {
            assert_eq!(failures.len(), 2);
            assert!(
                failures.iter().all(|f| f.attempts == 1 && f.class == ErrorClass::WatchdogBudget),
                "a dry budget must record the typed failure after one attempt: {failures:?}"
            );
        }
        other => panic!("expected AllRepetitionsFailed, got {other}"),
    }
}

#[test]
fn overrunning_repetition_is_classed_deadline_exceeded() {
    let host = esnet_host();
    let path = Testbeds::esnet_path(EsnetPath::Lan);
    let opts = Iperf3Opts::new(2).omit(0).seed(31);
    // An already-expired deadline: the first step chunk completes (the
    // run is much longer than one chunk), then the leash snaps.
    let sup = Supervisor::new(RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::from_millis(1),
        deadline: Duration::ZERO,
    });
    let err = sup
        .drive(31, || {
            iperf3sim::start_session(&host, &host, &path, &opts, &FaultPlan::none(), None)
        })
        .unwrap_err();
    assert_eq!(err.class, ErrorClass::DeadlineExceeded);
    assert!(err.error.contains("deadline"), "{}", err.error);
    // A hang can be load-dependent, so the class is worth a retry.
    assert!(ErrorClass::DeadlineExceeded.retryable());
}

#[test]
fn killed_worker_resumes_bit_identical_from_checkpoint() {
    let host = esnet_host();
    let path = Testbeds::esnet_path(EsnetPath::Lan);
    let chaos = Arc::new(ChaosPlan::new(7));
    // Pick a run seed the schedule marks for death (≈40% of them).
    let run_seed = (1..1000u64)
        .find(|s| chaos.kill_after(*s, 0).is_some())
        .expect("a 40% kill rate marks some seed in 1..1000");
    let opts = Iperf3Opts::new(2).omit(0).seed(run_seed);
    let clean = iperf3sim::run(&host, &host, &path, &opts).expect("clean run");
    let sup = Supervisor::default().with_chaos(chaos.clone());
    let report = sup
        .drive(run_seed, || {
            iperf3sim::start_session(&host, &host, &path, &opts, &FaultPlan::none(), None)
        })
        .expect("supervised run survives its own murder");
    assert!(chaos.stats.kills() >= 1, "{}", chaos.stats.summary());
    assert_eq!(
        chaos.stats.resumes(),
        chaos.stats.kills(),
        "every kill had a checkpoint to resume from: {}",
        chaos.stats.summary()
    );
    assert_eq!(format!("{clean:?}"), format!("{report:?}"));
    assert_eq!(clean.to_json(), report.to_json());
}

#[test]
fn failed_rep_taxonomy_round_trips_through_json() {
    // Property-style sweep: every error class, adversarial message
    // strings (quotes, backslashes, control chars, multi-byte), random
    // seeds and attempt counts — all must survive the manifest JSON.
    let mut rng = SimRng::seed_from_u64(0x5eed_f00d);
    const POOL: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{1f}', 'é', '→', '日', '{',
        '}', ':', ',', '[', ']', '/',
    ];
    for i in 0..200usize {
        let class = ErrorClass::ALL[i % ErrorClass::ALL.len()];
        let len = (rng.next_u64() % 48) as usize;
        let error: String =
            (0..len).map(|_| POOL[(rng.next_u64() as usize) % POOL.len()]).collect();
        let rep = FailedRep {
            seed: rng.next_u64(),
            error,
            class,
            attempts: (rng.next_u64() % 9 + 1) as u32,
        };
        let json = rep.to_json();
        assert_eq!(FailedRep::from_json(&json).as_ref(), Some(&rep), "case {i}: {json}");
    }
    // Wire names are the contract: an unknown class must not parse.
    assert!(FailedRep::from_json(
        "{\"seed\":1,\"class\":\"cosmic-ray\",\"attempts\":1,\"error\":\"\"}"
    )
    .is_none());
}
