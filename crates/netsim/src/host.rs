//! A simulated host: CPU core servers, fabric, NIC egress, RX ring.
//!
//! Each core is a FIFO server (`next_free` + accumulated busy time).
//! Flows are assigned an app core and an IRQ core: round-robin over the
//! configured sets when affinity is tuned, random — with possible
//! app/IRQ collisions and cross-NUMA penalties — when `irqbalance` is
//! left on (the §III-A variance).

use linuxhost::{calib, CoreGroup, CostModel, CpuAccounting, CpuReport, HostConfig, Stage};
use nethw::RxRing;
use simcore::{Bytes, CycleLedger, SimDuration, SimRng, SimTime};

#[derive(Debug, Clone, Copy, Default)]
struct CoreServer {
    next_free: SimTime,
}

/// Per-flow core assignment and penalties.
#[derive(Debug, Clone, Copy)]
struct FlowPlacement {
    app_core: usize,
    irq_core: usize,
    /// Service-time multiplier from bad placement (1.0 when tuned).
    placement_penalty: f64,
}

/// One simulated host (used as sender or receiver).
///
/// `Clone` deep-copies every server, ledger, and placement so a
/// checkpointed simulation resumes with bit-identical host state.
#[derive(Clone)]
pub struct SimHost {
    /// The host's cost model.
    pub cost: CostModel,
    cores: Vec<CoreServer>,
    groups: Vec<CoreGroup>,
    accounting: CpuAccounting,
    fabric: CoreServer,
    fabric_busy: SimDuration,
    nic_egress: CoreServer,
    nic_rate: simcore::BitRate,
    /// RX ring (receiver role).
    pub ring: RxRing,
    placements: Vec<FlowPlacement>,
    /// Application cores occupy indices `0..n_app` (IRQ cores follow).
    n_app: usize,
    /// Per-core, per-stage busy ledger; `Some` only when the workload
    /// enables bottleneck attribution. The fabric is booked as a
    /// pseudo-core at index `cores.len()`. Charging is strictly
    /// additive bookkeeping — it never alters service or completion
    /// times — so instrumented runs stay bit-identical.
    ledger: Option<CycleLedger>,
}

impl SimHost {
    /// Build a host for `num_flows` flows, using `rng` for stochastic
    /// placement when irqbalance is on. `attribution` allocates the
    /// per-core, per-stage cycle ledger (off = zero cost: the option
    /// stays `None` and every charge site is a single branch).
    pub fn new(cfg: &HostConfig, num_flows: usize, attribution: bool, rng: &mut SimRng) -> Self {
        let cost = CostModel::new(cfg);
        let alloc = &cfg.cores;
        // Core index space: 0..n_app are app cores, n_app.. are IRQ cores.
        let n_app = alloc.app_cores.len();
        let n_irq = alloc.irq_cores.len();
        let mut groups = vec![CoreGroup::App; n_app];
        groups.extend(vec![CoreGroup::Irq; n_irq]);

        let mut placements = Vec::with_capacity(num_flows);
        for f in 0..num_flows {
            if alloc.irqbalance {
                // Random placement over the whole machine; app and IRQ
                // may land on the same core or on the wrong NUMA node.
                let app = rng.uniform_u64(0, n_app as u64) as usize;
                let irq = n_app + rng.uniform_u64(0, n_irq as u64) as usize;
                // With overlapping stock sets, a "collision" means the
                // scheduler put the app where IRQs fire: model that as
                // a coin flip per flow.
                let collided = rng.chance(0.30);
                let cross_numa = rng.uniform(1.0, 1.6);
                let penalty =
                    if collided { cross_numa / calib::SHARED_CORE_CAPACITY } else { cross_numa };
                placements.push(FlowPlacement {
                    app_core: app,
                    irq_core: irq,
                    placement_penalty: penalty,
                });
            } else {
                placements.push(FlowPlacement {
                    app_core: f % n_app,
                    irq_core: n_app + (f % n_irq),
                    placement_penalty: 1.0,
                });
            }
        }

        let mtu = cfg.offload.mtu;
        SimHost {
            cost,
            cores: vec![CoreServer::default(); n_app + n_irq],
            accounting: CpuAccounting::new(groups.clone()),
            groups,
            fabric: CoreServer::default(),
            fabric_busy: SimDuration::ZERO,
            nic_egress: CoreServer::default(),
            nic_rate: {
                let nic = nethw::Nic::new(cfg.nic, mtu);
                nic.effective_rate()
            },
            ring: RxRing::new(cfg.effective_ring_entries(), mtu),
            placements,
            n_app,
            ledger: attribution
                .then(|| CycleLedger::new(n_app + n_irq + 1, Stage::COUNT)),
        }
    }

    fn serve(&mut self, core: usize, now: SimTime, svc: SimDuration, stage: Stage) -> SimTime {
        let start = self.cores[core].next_free.max(now);
        let done = start + svc;
        self.cores[core].next_free = done;
        self.accounting.add_busy(core, svc);
        if let Some(ledger) = &mut self.ledger {
            ledger.charge(core, stage.index(), svc);
        }
        done
    }

    /// Queue `svc` of work on the flow's application core, attributed
    /// to `stage`; returns the completion time.
    pub fn serve_app(&mut self, flow: usize, now: SimTime, svc: SimDuration, stage: Stage) -> SimTime {
        let p = self.placements[flow];
        self.serve(p.app_core, now, svc.mul_f64(p.placement_penalty), stage)
    }

    /// Queue `svc` of work on the flow's IRQ core, attributed to `stage`.
    pub fn serve_irq(&mut self, flow: usize, now: SimTime, svc: SimDuration, stage: Stage) -> SimTime {
        let p = self.placements[flow];
        self.serve(p.irq_core, now, svc.mul_f64(p.placement_penalty), stage)
    }

    /// Record IRQ-core busy time without waiting for completion
    /// (lightweight work like ACK processing).
    pub fn charge_irq(&mut self, flow: usize, svc: SimDuration, stage: Stage) {
        let p = self.placements[flow];
        self.accounting.add_busy(p.irq_core, svc);
        if let Some(ledger) = &mut self.ledger {
            ledger.charge(p.irq_core, stage.index(), svc);
        }
    }

    /// Queue a burst on the host fabric (shared memory/DMA bandwidth),
    /// attributed to `stage`; returns the completion time.
    pub fn serve_fabric(&mut self, now: SimTime, svc: SimDuration, stage: Stage) -> SimTime {
        let start = self.fabric.next_free.max(now);
        let done = start + svc;
        self.fabric.next_free = done;
        self.fabric_busy += svc;
        if let Some(ledger) = &mut self.ledger {
            ledger.charge(self.cores.len(), stage.index(), svc);
        }
        done
    }

    /// Serialise a burst onto the wire through the NIC (single egress
    /// pipe at the NIC's effective rate). Returns the time the last bit
    /// leaves.
    pub fn nic_transmit(&mut self, now: SimTime, bytes: Bytes) -> SimTime {
        let start = self.nic_egress.next_free.max(now);
        let done = start + self.nic_rate.serialize_time(bytes);
        self.nic_egress.next_free = done;
        done
    }

    /// The NIC's effective (wire ∧ PCIe) rate.
    pub fn nic_rate(&self) -> simcore::BitRate {
        self.nic_rate
    }

    /// How far ahead of `now` the transmit path (fabric + NIC egress)
    /// is booked. When the TX ring/DMA path backs up, the driver stops
    /// pulling from the qdisc and TSQ holds the socket — this is that
    /// backpressure signal.
    pub fn tx_backlog(&self, now: SimTime) -> SimDuration {
        self.fabric
            .next_free
            .max(self.nic_egress.next_free)
            .saturating_since(now)
    }

    /// Is the flow's app core currently busy past `now`?
    pub fn app_core_busy(&self, flow: usize, now: SimTime) -> bool {
        self.cores[self.placements[flow].app_core].next_free > now
    }

    /// CPU report over a window.
    pub fn cpu_report(&self, start: SimTime, end: SimTime) -> CpuReport {
        self.accounting.report(start, end)
    }

    /// Snapshot of per-core busy time (for omit-window subtraction).
    pub fn busy_snapshot(&self) -> Vec<SimDuration> {
        (0..self.accounting.num_cores()).map(|i| self.accounting.busy(i)).collect()
    }

    /// CPU report over `[start, end)` excluding busy time recorded
    /// before `snapshot` was taken.
    pub fn cpu_report_since(
        &self,
        snapshot: &[SimDuration],
        start: SimTime,
        end: SimTime,
    ) -> CpuReport {
        let mut acct = CpuAccounting::new(self.groups.clone());
        for (i, snap) in snapshot.iter().enumerate() {
            acct.add_busy(i, self.accounting.busy(i).saturating_sub(*snap));
        }
        acct.report(start, end)
    }

    /// Placement penalty of a flow (diagnostics; 1.0 when tuned).
    pub fn placement_penalty(&self, flow: usize) -> f64 {
        self.placements[flow].placement_penalty
    }

    /// The per-core, per-stage busy ledger, when attribution is on.
    /// Core indices `0..app_core_count()` are app cores, then IRQ
    /// cores, with the fabric pseudo-core last.
    pub fn ledger(&self) -> Option<&CycleLedger> {
        self.ledger.as_ref()
    }

    /// Number of application cores (ledger index prefix).
    pub fn app_core_count(&self) -> usize {
        self.n_app
    }

    /// Number of IRQ cores.
    pub fn irq_core_count(&self) -> usize {
        self.cores.len() - self.n_app
    }

    /// Human-readable role of a ledger core index (`app0`, `irq1`,
    /// `fabric`).
    pub fn core_role(&self, idx: usize) -> String {
        if idx < self.n_app {
            format!("app{idx}")
        } else if idx < self.cores.len() {
            format!("irq{}", idx - self.n_app)
        } else {
            "fabric".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxhost::KernelVersion;

    fn host(flows: usize) -> SimHost {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        let mut rng = SimRng::seed_from_u64(1);
        SimHost::new(&cfg, flows, false, &mut rng)
    }

    #[test]
    fn app_core_serialises_fifo() {
        let mut h = host(1);
        let svc = SimDuration::from_micros(10);
        let t1 = h.serve_app(0, SimTime::ZERO, svc, Stage::TxApp);
        let t2 = h.serve_app(0, SimTime::ZERO, svc, Stage::TxApp);
        assert_eq!(t1.as_nanos(), 10_000);
        assert_eq!(t2.as_nanos(), 20_000);
    }

    #[test]
    fn tuned_flows_get_distinct_cores() {
        let mut h = host(8);
        let svc = SimDuration::from_micros(10);
        // All 8 flows serve simultaneously without queueing: distinct cores.
        for f in 0..8 {
            let done = h.serve_app(f, SimTime::ZERO, svc, Stage::TxApp);
            assert_eq!(done.as_nanos(), 10_000, "flow {f} should not queue");
            assert_eq!(h.placement_penalty(f), 1.0);
        }
    }

    #[test]
    fn irqbalance_creates_penalties() {
        let cfg = HostConfig::untuned(
            linuxhost::CpuArch::AmdEpyc73F3,
            nethw::NicModel::ConnectX7,
            KernelVersion::L5_15,
        );
        let mut rng = SimRng::seed_from_u64(7);
        let h = SimHost::new(&cfg, 16, false, &mut rng);
        let penalties: Vec<f64> = (0..16).map(|f| h.placement_penalty(f)).collect();
        assert!(penalties.iter().any(|&p| p > 1.0), "some flows must be penalised");
        let spread = penalties.iter().cloned().fold(f64::MIN, f64::max)
            / penalties.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1.2, "placement variance should be visible, spread {spread:.2}");
    }

    #[test]
    fn nic_serialisation_spaces_bursts() {
        let mut h = host(1);
        let b = Bytes::kib(64);
        let t1 = h.nic_transmit(SimTime::ZERO, b);
        let t2 = h.nic_transmit(SimTime::ZERO, b);
        let one = h.nic_rate().serialize_time(b).as_nanos();
        assert_eq!(t1.as_nanos(), one);
        assert_eq!(t2.as_nanos(), 2 * one);
    }

    #[test]
    fn fabric_is_shared_across_flows() {
        let mut h = host(2);
        let svc = SimDuration::from_micros(5);
        let t1 = h.serve_fabric(SimTime::ZERO, svc, Stage::FabricTx);
        let t2 = h.serve_fabric(SimTime::ZERO, svc, Stage::FabricTx);
        assert!(t2 > t1, "fabric must serialise");
    }

    #[test]
    fn cpu_report_reflects_service() {
        let mut h = host(1);
        h.serve_app(0, SimTime::ZERO, SimDuration::from_millis(500), Stage::TxApp);
        h.serve_irq(0, SimTime::ZERO, SimDuration::from_millis(250), Stage::TxSoftirq);
        let r = h.cpu_report(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!((r.app_pct - 50.0).abs() < 1e-6);
        assert!((r.irq_pct - 25.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_report_since_subtracts_warmup() {
        let mut h = host(1);
        h.serve_app(0, SimTime::ZERO, SimDuration::from_millis(100), Stage::TxApp);
        let snap = h.busy_snapshot();
        h.serve_app(0, SimTime::from_secs_f64(1.0), SimDuration::from_millis(300), Stage::TxApp);
        let r = h.cpu_report_since(&snap, SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(2.0));
        assert!((r.app_pct - 30.0).abs() < 1e-6, "got {}", r.app_pct);
    }

    #[test]
    fn ledger_tracks_stage_and_agrees_with_accounting() {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        let mut rng = SimRng::seed_from_u64(1);
        let mut h = SimHost::new(&cfg, 1, true, &mut rng);
        h.serve_app(0, SimTime::ZERO, SimDuration::from_micros(10), Stage::TxApp);
        h.serve_app(0, SimTime::ZERO, SimDuration::from_micros(4), Stage::Checksum);
        h.serve_irq(0, SimTime::ZERO, SimDuration::from_micros(6), Stage::TxSoftirq);
        h.charge_irq(0, SimDuration::from_micros(1), Stage::Ack);
        h.serve_fabric(SimTime::ZERO, SimDuration::from_micros(3), Stage::FabricTx);
        let ledger = h.ledger().expect("attribution on");
        // Stage cells land where they were charged.
        assert_eq!(ledger.busy(0, Stage::TxApp.index()), SimDuration::from_micros(10));
        assert_eq!(ledger.busy(0, Stage::Checksum.index()), SimDuration::from_micros(4));
        let irq_core = h.app_core_count();
        assert_eq!(ledger.busy(irq_core, Stage::TxSoftirq.index()), SimDuration::from_micros(6));
        assert_eq!(ledger.busy(irq_core, Stage::Ack.index()), SimDuration::from_micros(1));
        // Fabric books on the pseudo-core past all CPU cores.
        let fabric = h.app_core_count() + h.irq_core_count();
        assert_eq!(ledger.busy(fabric, Stage::FabricTx.index()), SimDuration::from_micros(3));
        // Ledger core totals agree exactly with the mpstat accounting
        // for every real core (the fabric exists only in the ledger).
        let acct = h.busy_snapshot();
        for (core, busy) in acct.iter().enumerate() {
            assert_eq!(ledger.core_total(core), *busy, "core {core}");
        }
        assert_eq!(h.core_role(0), "app0");
        assert_eq!(h.core_role(irq_core), "irq0");
        assert_eq!(h.core_role(fabric), "fabric");
    }

    #[test]
    fn ledger_absent_when_attribution_off() {
        let h = host(1);
        assert!(h.ledger().is_none());
    }

    #[test]
    fn ring_size_comes_from_config() {
        let h = host(1);
        // ESnet preset: 8192 descriptors × 9000 B.
        assert_eq!(h.ring.capacity().as_u64(), 8192 * 9000);
    }
}
