//! Property-based tests: invariants that must hold for *any*
//! configuration, checked over randomly drawn scenarios.
//!
//! Runs are short (1–2 simulated seconds) and the case count modest —
//! each case is a full discrete-event simulation.

use dtnperf::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AnyScenario {
    amd: bool,
    kernel: KernelVersion,
    rtt_ms: u64,
    flows: usize,
    pace_gbps: Option<f64>,
    zerocopy: bool,
    skip_rx_copy: bool,
    cc: CcAlgorithm,
    seed: u64,
}

fn any_scenario() -> impl Strategy<Value = AnyScenario> {
    (
        any::<bool>(),
        prop_oneof![
            Just(KernelVersion::L5_15),
            Just(KernelVersion::L6_5),
            Just(KernelVersion::L6_8),
        ],
        0u64..60,
        1usize..4,
        prop_oneof![Just(None), (2u64..30).prop_map(|g| Some(g as f64))],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(CcAlgorithm::Cubic),
            Just(CcAlgorithm::BbrV1),
            Just(CcAlgorithm::BbrV3),
        ],
        0u64..1_000_000,
    )
        .prop_map(
            |(amd, kernel, rtt_ms, flows, pace_gbps, zerocopy, skip_rx_copy, cc, seed)| {
                AnyScenario {
                    amd,
                    kernel,
                    rtt_ms,
                    flows,
                    pace_gbps,
                    zerocopy,
                    skip_rx_copy,
                    cc,
                    seed,
                }
            },
        )
}

fn build(s: &AnyScenario) -> (HostConfig, PathSpec, Iperf3Opts) {
    let host = if s.amd {
        Testbeds::esnet_host(s.kernel)
    } else {
        Testbeds::amlight_host(s.kernel)
    };
    let rate = if s.amd { 200.0 } else { 100.0 };
    let path = if s.rtt_ms == 0 {
        PathSpec::lan("prop-lan", BitRate::gbps(rate))
    } else {
        PathSpec::wan("prop-wan", BitRate::gbps(rate), SimDuration::from_millis(s.rtt_ms))
    };
    let mut opts = Iperf3Opts::new(2).omit(0).parallel(s.flows).congestion(s.cc).seed(s.seed);
    if let Some(g) = s.pace_gbps {
        opts = opts.fq_rate(BitRate::gbps(g));
    }
    if s.zerocopy {
        opts = opts.zerocopy();
    }
    if s.skip_rx_copy {
        opts = opts.skip_rx_copy();
    }
    (host, path, opts)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 0,
        .. ProptestConfig::default()
    })]

    /// Goodput can never exceed the narrowest physical limit.
    #[test]
    fn goodput_bounded_by_physics(s in any_scenario()) {
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let nic = dtnperf::nethw::Nic::new(host.nic, host.offload.mtu).effective_rate().as_gbps();
        let mut limit = path.usable_rate().as_gbps().min(nic);
        if let Some(g) = s.pace_gbps {
            limit = limit.min(g * s.flows as f64);
        }
        let got = report.sum_bitrate().as_gbps();
        prop_assert!(
            got <= limit * 1.02 + 0.1,
            "goodput {got:.2} exceeds physical limit {limit:.2} ({s:?})"
        );
    }

    /// Same (config, seed) ⇒ bit-identical results.
    #[test]
    fn runs_are_deterministic(s in any_scenario()) {
        let (host, path, opts) = build(&s);
        let a = iperf3_run(&host, &host, &path, &opts).unwrap();
        let b = iperf3_run(&host, &host, &path, &opts).unwrap();
        prop_assert_eq!(a.sum_bitrate().as_bps(), b.sum_bitrate().as_bps());
        prop_assert_eq!(a.sum_retr(), b.sum_retr());
        prop_assert!((a.sender_cpu.combined_pct() - b.sender_cpu.combined_pct()).abs() < 1e-9);
    }

    /// Per-stream rates respect the per-flow pacing cap.
    #[test]
    fn pacing_caps_each_stream(s in any_scenario()) {
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        if let Some(g) = s.pace_gbps {
            for stream in &report.streams {
                prop_assert!(
                    stream.bitrate.as_gbps() <= g * 1.02 + 0.05,
                    "stream {} at {:.2} beats its {g} G cap ({s:?})",
                    stream.id,
                    stream.bitrate.as_gbps()
                );
            }
        }
    }

    /// CPU accounting stays within physical bounds and data moves.
    #[test]
    fn cpu_and_liveness_sane(s in any_scenario()) {
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let n_cores = (host.cores.app_cores.len() + host.cores.irq_cores.len()) as f64;
        for cpu in [&report.sender_cpu, &report.receiver_cpu] {
            prop_assert!(cpu.combined_pct() >= 0.0);
            prop_assert!(
                cpu.combined_pct() <= n_cores * 100.0 + 1e-6,
                "CPU {:.0}% exceeds {} cores ({s:?})",
                cpu.combined_pct(),
                n_cores
            );
            prop_assert!(cpu.peak_core_pct <= 100.0 + 1e-6);
        }
        // Liveness: every configuration must move *some* data.
        prop_assert!(
            report.sum_bitrate().as_gbps() > 0.01,
            "no data moved ({s:?})"
        );
        // Stream accounting adds up.
        prop_assert_eq!(report.streams.len(), s.flows);
        let sum: f64 = report.streams.iter().map(|f| f.bitrate.as_bps()).sum();
        prop_assert!((sum - report.sum_bitrate().as_bps()).abs() < 1.0);
    }

    /// A clean path (no drops anywhere) must not retransmit more than
    /// the occasional tail-loss probe.
    #[test]
    fn clean_paths_barely_retransmit(s in any_scenario()) {
        // Only meaningful when nothing is overloaded: pace gently.
        let (host, path, mut opts) = build(&s);
        let per_flow = 4.0 / s.flows as f64;
        opts = opts.fq_rate(BitRate::gbps(per_flow));
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let pkts_per_burst = host.offload.packets_per_burst();
        prop_assert!(
            report.sum_retr() <= 4 * pkts_per_burst * s.flows as u64,
            "gently-paced clean path retransmitted {} packets ({s:?})",
            report.sum_retr()
        );
    }
}
