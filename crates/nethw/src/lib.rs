//! `nethw` — network hardware models.
//!
//! The paper's testbeds are built from 100/200 G NICs (Nvidia
//! ConnectX-5 / ConnectX-7), shared-buffer switches (Edgecore
//! AS9716-32D: 64 MB shared buffer), and real WAN paths at 25/54/63/104
//! ms RTT. This crate models those components:
//!
//! * [`nic`] — NIC models: line rate, effective PCIe throughput, RX ring.
//! * [`link`] — point-to-point links (serialisation + propagation).
//! * [`switch`] — a shared-buffer output-queued switch with tail drop and
//!   optional IEEE 802.3x pause-frame flow control.
//! * [`pause`] — the 802.3x xoff/xon state machine.
//! * [`path`] — an end-to-end path specification (RTT, bottleneck,
//!   buffering, cross traffic) as used by the experiments.
//! * [`cross`] — bursty on/off background traffic (AmLight's ~16 Gbps of
//!   production traffic).
//!
//! These are passive models: the discrete-event loop in `netsim` owns
//! time and drives them.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cross;
pub mod link;
pub mod nic;
pub mod path;
pub mod pause;
pub mod switch;

pub use cross::{CrossTraffic, CrossTrafficSpec};
pub use link::Link;
pub use nic::{Nic, NicModel, RxRing};
pub use path::{PathClass, PathSpec};
pub use pause::{PauseState, PauseThresholds};
pub use switch::{EnqueueOutcome, SharedBufferSwitch};
