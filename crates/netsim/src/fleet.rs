//! Fleet simulation: millions of dynamically arriving flows in one run.
//!
//! [`FleetSim`] executes a [`FleetProfile`](crate::workload::FleetProfile):
//! flows open at sampled arrival times ([`FlowEvent::Open`]), transfer a
//! finite number of bursts through a per-class FIFO bottleneck, and
//! close ([`FlowEvent::Close`]) when the final burst is cumulatively
//! acknowledged — the burst-granularity FIN. Per-flow state lives in a
//! generation-guarded slot slab and is reclaimed on close, so resident
//! memory is **O(active flows)** regardless of how many flows the run
//! serves. Results fold through [`obs::IntervalAggregator`] as streaming
//! FCT / goodput histograms — there is never a per-flow result vector.
//!
//! The per-flow loss timers (TLP/RTO) are *cancelable* wheel timers:
//! every deadline change and every close cancels the stale timer
//! through [`EventQueue::cancel_timer`]'s tombstone path, and the
//! end-of-run invariants assert (via [`EventQueue::health`]) that the
//! timer slab balances — a closing flow must not leak slab slots.
//!
//! Each close also classifies *what limited this flow* from the
//! sender's own counters — the fleet-level counterpart of the PR 3
//! per-interval [`crate::attribution`] verdicts — so the result can
//! roll up "what limited the p99" across millions of flows.

use std::collections::BTreeMap;

use obs::{HdrHistogram, IntervalAggregator, IntervalRecord};
use simcore::{
    Bytes, EventQueue, QueueHealth, SimDuration, SimTime, TimerId, WatchdogTrip,
};
use tcpstack::{SendSlot, TcpReceiver, TcpSender, TimerKind};

use crate::error::SimError;
use crate::workload::{ArrivalSampler, FleetProfile};

/// Wire MTU used for fleet flows (standard Ethernet; the fleet models
/// transfer shape, not offload geometry, so jumbo vs 1500 is a class
/// concern folded into the bottleneck rate).
const FLEET_MTU: u64 = 1500;

/// Initial congestion window: IW10.
const INIT_CWND_MULT: u64 = 10;

/// Events the fleet loop schedules.
///
/// `slot`/`gen` address a flow through the generation-guarded slab: a
/// slot is reused after close with a bumped generation, so any event
/// still in flight for the dead flow (a duplicate ACK delivery, a paced
/// transmit) no-ops instead of corrupting the new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEvent {
    /// The next flow arrival. Opens one flow and schedules the next.
    Open,
    /// A paced transmit opportunity for one flow.
    Tx {
        /// Slot index in the flow slab.
        slot: u32,
        /// Slot generation the event was issued for.
        gen: u32,
    },
    /// A burst (and its ACK) finished the bottleneck + RTT round trip.
    Deliver {
        /// Slot index in the flow slab.
        slot: u32,
        /// Slot generation the event was issued for.
        gen: u32,
        /// Burst index being delivered.
        idx: u64,
    },
    /// A loss timer (TLP or RTO) fired.
    Timer {
        /// Slot index in the flow slab.
        slot: u32,
        /// Slot generation the event was issued for.
        gen: u32,
    },
    /// Advance the streaming-aggregation watermark.
    Seal,
    /// The flow completed (final cum-ACK): record FCT, reclaim state.
    Close {
        /// Slot index in the flow slab.
        slot: u32,
        /// Slot generation the event was issued for.
        gen: u32,
    },
}

/// What limited one flow's completion time, judged at close from the
/// sender's own counters — the per-flow analogue of
/// [`crate::attribution::LimitingFactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowFactor {
    /// The flow took at least one retransmission timeout.
    RtoStall,
    /// The flow retransmitted (fast recovery / TLP) but never RTO'd.
    LossRecovery,
    /// Majority of ACKs arrived cwnd-limited: the window, not the
    /// path, was the constraint.
    CwndLimited,
    /// None of the above: the flow got its fair share of the bottleneck
    /// (or was too short to be limited by anything else).
    BottleneckShare,
}

impl FlowFactor {
    /// Stable snake_case label (metric and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            FlowFactor::RtoStall => "rto_stall",
            FlowFactor::LossRecovery => "loss_recovery",
            FlowFactor::CwndLimited => "cwnd_limited",
            FlowFactor::BottleneckShare => "bottleneck_share",
        }
    }

    /// All factors, in diagnostic-priority order.
    pub const ALL: [FlowFactor; 4] = [
        FlowFactor::RtoStall,
        FlowFactor::LossRecovery,
        FlowFactor::CwndLimited,
        FlowFactor::BottleneckShare,
    ];
}

/// Per-flow resident state. Everything a live flow needs; dropped (and
/// its timer slab slot freed) the moment the flow closes.
struct FlowSlot {
    sender: TcpSender,
    recv: TcpReceiver,
    /// Index into the profile's class list.
    class: usize,
    opened_at: SimTime,
    /// Transfer size in bursts (the FIN point).
    bursts: u64,
    /// Ideal (uncontended) completion time: one RTT plus pure
    /// serialization at the class bottleneck. The FCT normalizer.
    ideal: SimDuration,
    /// Paced flows transmit one burst per [`FlowEvent::Tx`], gapped at
    /// the class bottleneck rate; unpaced flows dump the whole window.
    paced: bool,
    pace_gap: SimDuration,
    next_pace_at: SimTime,
    /// A `Tx` event is already scheduled (never double-arm).
    tx_armed: bool,
    /// The pending cancelable loss timer, with the deadline/kind it was
    /// armed for (to skip no-op rearms).
    timer: Option<(TimerId, SimTime, TimerKind)>,
    /// A `Close` event has been pushed; ignore further completions.
    closing: bool,
}

/// Aggregated outcome of one fleet run. Bounded size: histograms and
/// interval records only — never per-flow data.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Profile name.
    pub name: String,
    /// Flows opened (arrivals admitted).
    pub flows_opened: u64,
    /// Flows served to completion (== opened at end of run).
    pub flows_served: u64,
    /// High-water mark of simultaneously open flows.
    pub peak_active: usize,
    /// Slot-slab high-water mark (allocated flow slots). The O(active)
    /// memory witness: `peak_slots == peak_active` regardless of
    /// `flows_served`.
    pub peak_slots: usize,
    /// Events processed by the loop.
    pub events: u64,
    /// Past-time push clamps observed by the queue (should be 0).
    pub past_clamps: u64,
    /// Application bytes transferred by completed flows.
    pub total_bytes: u64,
    /// Simulated time when the last event fired.
    pub finished_at: SimTime,
    /// Flow-completion-time distribution, microseconds.
    pub fct: HdrHistogram,
    /// FCT slowdown distribution: `100 × fct / ideal_fct`, where the
    /// ideal is one RTT plus pure serialization at the class
    /// bottleneck. 100 = ideal; scale-free across profiles with
    /// different RTTs and sizes.
    pub slowdown: HdrHistogram,
    /// FCT distribution per limiting factor (keys from
    /// [`FlowFactor::name`]).
    pub factors: BTreeMap<&'static str, HdrHistogram>,
    /// Streaming interval series (`fct_us`, `goodput_mbps` metrics).
    pub intervals: Vec<IntervalRecord>,
    /// Samples the aggregator dropped below the watermark (must be 0:
    /// closes are recorded at `now`, seals only trail it).
    pub late_dropped: u64,
    /// Bursts tail-dropped at a full class bottleneck buffer.
    pub drops: u64,
    /// Bursts put on the wire (including retransmissions).
    pub wire_bursts: u64,
    /// Sum of per-flow RTO firings (each one is a ≥ min-RTO stall).
    pub rto_events: u64,
    /// Sum of per-flow tail-loss-probe firings.
    pub tlp_events: u64,
    /// Sum of per-flow retransmitted bursts.
    pub retx_bursts: u64,
    /// Loss timers cancelled through the wheel's tombstone path.
    pub timers_cancelled: u64,
    /// Final queue health (slab balance asserted before returning).
    pub health: QueueHealth,
}

impl FleetResult {
    /// FCT quantile in microseconds (`None` until a flow completed).
    pub fn fct_us(&self, q: f64) -> Option<u64> {
        self.fct.quantile(q)
    }

    /// Slowdown quantile (`100` = ideal completion time).
    pub fn slowdown_x100(&self, q: f64) -> Option<u64> {
        self.slowdown.quantile(q)
    }

    /// Mean fleet goodput over the whole run, Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        let secs = self.finished_at.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / secs / 1e9
    }

    /// "What limited the p99": for each factor, the number of its flows
    /// with FCT above the fleet-wide p99, descending. The factor whose
    /// flows dominate the tail is the fleet-level bottleneck verdict.
    pub fn tail_rollup(&self) -> Vec<(&'static str, u64)> {
        let Some(p99) = self.fct.quantile(0.99) else {
            return Vec::new();
        };
        let mut rows: Vec<(&'static str, u64)> = FlowFactor::ALL
            .iter()
            .map(|f| {
                let above = self
                    .factors
                    .get(f.name())
                    .map(|h| {
                        h.nonzero_buckets()
                            .filter(|&(v, _)| v > p99)
                            .map(|(_, c)| c)
                            .sum()
                    })
                    .unwrap_or(0u64);
                (f.name(), above)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }
}

/// The fleet event loop. Build with [`FleetSim::new`], run with
/// [`FleetSim::run`].
pub struct FleetSim {
    profile: FleetProfile,
    fingerprint: u64,
    /// Event budget: exceeding it trips the watchdog instead of
    /// spinning forever (`None` = unlimited).
    event_budget: Option<u64>,
}

impl FleetSim {
    /// A runner for `profile`. Fails fast on an invalid profile.
    pub fn new(profile: FleetProfile) -> Result<Self, SimError> {
        let problems = profile.validate();
        if !problems.is_empty() {
            return Err(SimError::InvalidConfig(problems));
        }
        let fingerprint = profile.fingerprint();
        Ok(FleetSim { profile, fingerprint, event_budget: None })
    }

    /// Trip the watchdog after `events` loop iterations (livelock /
    /// runaway-retransmission protection for tests and CI).
    pub fn with_event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }

    /// Execute the profile to completion: all arrivals within the
    /// duration served, all flows closed, queue drained.
    pub fn run(self) -> Result<FleetResult, SimError> {
        Loop::new(&self.profile, self.fingerprint, self.event_budget).run()
    }
}

/// All mutable loop state, separated from the config so handlers can
/// split-borrow fields.
struct Loop<'p> {
    p: &'p FleetProfile,
    /// Canonical profile fingerprint (per-flow draw seed base).
    fingerprint: u64,
    q: EventQueue<FlowEvent>,
    slots: Vec<Option<FlowSlot>>,
    /// Slot generations (parallel to `slots`), bumped on close.
    gens: Vec<u32>,
    free: Vec<u32>,
    /// Per-class bottleneck: the time its FIFO becomes idle.
    busy_until: Vec<SimTime>,
    sampler: ArrivalSampler,
    /// Arrival clock in float seconds (kept separate from SimTime so
    /// ns rounding never perturbs the sampled sequence).
    arrival_secs: f64,
    /// An `Open` event is pending in the queue.
    open_pending: bool,
    agg: IntervalAggregator,
    seal_pending: bool,
    fct: HdrHistogram,
    slowdown: HdrHistogram,
    factors: BTreeMap<&'static str, HdrHistogram>,
    flows_opened: u64,
    flows_served: u64,
    active: usize,
    peak_active: usize,
    total_bytes: u64,
    drops: u64,
    wire_bursts: u64,
    rto_events: u64,
    tlp_events: u64,
    retx_bursts: u64,
    timers_cancelled: u64,
    events: u64,
    budget: Option<u64>,
}

impl<'p> Loop<'p> {
    fn new(p: &'p FleetProfile, fingerprint: u64, budget: Option<u64>) -> Self {
        let mut q = EventQueue::with_capacity(1024);
        let mut sampler = ArrivalSampler::new(p, fingerprint);
        let first = sampler.next_arrival(0.0);
        let duration_secs = p.duration.as_secs_f64();
        let mut open_pending = false;
        if first <= duration_secs {
            q.push(SimTime::from_secs_f64(first), FlowEvent::Open);
            open_pending = true;
        }
        let mut seal_pending = false;
        if open_pending {
            q.push(SimTime::ZERO + p.interval_width, FlowEvent::Seal);
            seal_pending = true;
        }
        Loop {
            q,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            busy_until: vec![SimTime::ZERO; p.classes.len()],
            sampler,
            arrival_secs: first,
            open_pending,
            agg: IntervalAggregator::new(p.interval_width.as_nanos()),
            seal_pending,
            fct: HdrHistogram::new(),
            slowdown: HdrHistogram::new(),
            factors: BTreeMap::new(),
            flows_opened: 0,
            flows_served: 0,
            active: 0,
            peak_active: 0,
            total_bytes: 0,
            drops: 0,
            wire_bursts: 0,
            rto_events: 0,
            tlp_events: 0,
            retx_bursts: 0,
            timers_cancelled: 0,
            events: 0,
            budget,
            p,
            fingerprint,
        }
    }

    fn run(mut self) -> Result<FleetResult, SimError> {
        while let Some((now, ev)) = self.q.pop() {
            self.events += 1;
            if let Some(budget) = self.budget {
                if self.events > budget {
                    return Err(SimError::Stalled {
                        at: now,
                        trip: WatchdogTrip::BudgetExhausted { events: self.events, budget },
                    });
                }
            }
            match ev {
                FlowEvent::Open => self.on_open(now),
                FlowEvent::Tx { slot, gen } => self.on_tx(now, slot, gen),
                FlowEvent::Deliver { slot, gen, idx } => self.on_deliver(now, slot, gen, idx),
                FlowEvent::Timer { slot, gen } => self.on_timer(now, slot, gen),
                FlowEvent::Seal => self.on_seal(now),
                FlowEvent::Close { slot, gen } => self.on_close(now, slot, gen),
            }
        }
        self.finish()
    }

    // ---- event handlers --------------------------------------------------

    fn on_open(&mut self, now: SimTime) {
        self.open_pending = false;
        let flow_id = self.flows_opened;
        self.flows_opened += 1;
        let draw = self.p.draw_flow(self.fingerprint, flow_id);
        let class = &self.p.classes[draw.class];
        let burst = self.p.burst;
        let mtu = Bytes::new(FLEET_MTU);
        let bdp = class.bottleneck.bdp(class.rtt);
        // Buffers sized so the path, not the host, is the constraint:
        // twice the BDP, floor of 16 bursts.
        let buf = (bdp * 2).max(burst * 16);
        let cc = class.cc.build(mtu, Bytes::new(INIT_CWND_MULT * FLEET_MTU));
        let recv = TcpReceiver::new(burst, buf);
        let initial_rwnd = recv.rwnd();
        let mut sender = TcpSender::new(cc, burst, mtu, buf, initial_rwnd);
        // Seed the estimator with the handshake RTT (RFC 6298 §2.2: the
        // SYN/SYN-ACK exchange yields the first sample). Without it a
        // flow that loses its very first burst sits out the 1 s
        // no-sample initial RTO — a rung that would dominate every
        // fleet tail quantile.
        sender.rtt.on_sample(class.rtt, now);
        sender.set_flow_bursts(draw.bursts);
        let pace_gap = class.bottleneck.serialize_time(burst);
        let ideal = class.rtt
            + SimDuration::from_nanos(pace_gap.as_nanos().saturating_mul(draw.bursts));
        let slot = FlowSlot {
            sender,
            recv,
            class: draw.class,
            opened_at: now,
            bursts: draw.bursts,
            ideal,
            paced: class.pacing,
            pace_gap,
            next_pace_at: now,
            tx_armed: false,
            timer: None,
            closing: false,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        self.pump(now, i);

        // Schedule the next arrival while inside the horizon.
        let next = self.sampler.next_arrival(self.arrival_secs);
        self.arrival_secs = next;
        if next <= self.p.duration.as_secs_f64() && self.flows_opened < self.p.max_flows {
            self.q.push(SimTime::from_secs_f64(next), FlowEvent::Open);
            self.open_pending = true;
        }
    }

    fn on_tx(&mut self, now: SimTime, i: u32, gen: u32) {
        if self.gens[i as usize] != gen {
            return;
        }
        let Some(mut slot) = self.slots[i as usize].take() else { return };
        slot.tx_armed = false;
        match slot.sender.next_slot(now) {
            SendSlot::Blocked => {}
            SendSlot::New(idx) | SendSlot::Retransmit(idx) => {
                self.transmit(now, i, gen, &mut slot, idx);
                slot.next_pace_at = now + slot.pace_gap;
            }
        }
        self.arm_tx(now, i, gen, &mut slot);
        self.rearm_timer(now, i, gen, &mut slot);
        self.slots[i as usize] = Some(slot);
    }

    fn on_deliver(&mut self, now: SimTime, i: u32, gen: u32, idx: u64) {
        if self.gens[i as usize] != gen {
            return;
        }
        let Some(mut slot) = self.slots[i as usize].take() else { return };
        let ack = slot.recv.on_burst(idx);
        // The application consumes immediately: the fleet measures
        // transfer time, not receiver-app scheduling.
        while slot.recv.app_read() {}
        let _ = slot.sender.on_ack(ack.cum_ack, ack.acked_idx, ack.rwnd, now);
        self.drive(now, i, gen, &mut slot);
        if slot.sender.is_complete() && !slot.closing {
            slot.closing = true;
            self.q.push(now, FlowEvent::Close { slot: i, gen });
        }
        self.rearm_timer(now, i, gen, &mut slot);
        self.slots[i as usize] = Some(slot);
    }

    fn on_timer(&mut self, now: SimTime, i: u32, gen: u32) {
        if self.gens[i as usize] != gen {
            return;
        }
        let Some(mut slot) = self.slots[i as usize].take() else { return };
        slot.timer = None;
        // Re-derive what is actually due (the deadline may have moved
        // since arming; a moved deadline just rearms below).
        if let Some((deadline, kind)) = slot.sender.timer_deadline() {
            if deadline <= now {
                match kind {
                    TimerKind::Tlp => slot.sender.on_tlp(now),
                    TimerKind::Rto => slot.sender.on_rto(now),
                }
                self.drive(now, i, gen, &mut slot);
            }
        }
        self.rearm_timer(now, i, gen, &mut slot);
        self.slots[i as usize] = Some(slot);
    }

    fn on_seal(&mut self, now: SimTime) {
        self.seal_pending = false;
        self.agg.seal_before(now.as_nanos());
        if self.active > 0 || self.open_pending {
            self.q.push(now + self.p.interval_width, FlowEvent::Seal);
            self.seal_pending = true;
        }
    }

    fn on_close(&mut self, now: SimTime, i: u32, gen: u32) {
        debug_assert_eq!(self.gens[i as usize], gen, "close for a reused slot");
        if self.gens[i as usize] != gen {
            return;
        }
        let Some(mut slot) = self.slots[i as usize].take() else { return };
        if let Some((id, _, _)) = slot.timer.take() {
            // Teardown through the tombstone path: the slab slot must
            // come back (asserted against `health()` at end of run).
            if self.q.cancel_timer(id) {
                self.timers_cancelled += 1;
            }
        }
        let fct = now.saturating_since(slot.opened_at);
        let fct_us = (fct.as_nanos() / 1_000).max(1);
        let bytes = slot.bursts * self.p.burst.as_u64();
        let goodput_mbps =
            ((bytes as f64 * 8.0 / fct.as_secs_f64().max(1e-9)) / 1e6).round() as u64;
        let slowdown_x100 =
            (fct.as_nanos().saturating_mul(100) / slot.ideal.as_nanos().max(1)).max(100);
        let t = now.as_nanos();
        self.agg.record(t, "fct_us", fct_us);
        self.agg.record(t, "goodput_mbps", goodput_mbps);
        self.agg.record(t, "slowdown_x100", slowdown_x100);
        self.fct.record(fct_us);
        self.slowdown.record(slowdown_x100);
        let factor = classify_flow(&slot);
        self.factors.entry(factor.name()).or_default().record(fct_us);
        self.rto_events += slot.sender.rto_events();
        self.tlp_events += slot.sender.tlp_events();
        self.retx_bursts += slot.sender.retx_bursts();
        self.total_bytes += bytes;
        self.flows_served += 1;
        self.active -= 1;
        self.gens[i as usize] = self.gens[i as usize].wrapping_add(1);
        self.free.push(i);
    }

    // ---- flow mechanics --------------------------------------------------

    /// Fill the app buffer and transmit whatever the window and pacing
    /// mode allow right now.
    fn drive(&mut self, now: SimTime, i: u32, gen: u32, slot: &mut FlowSlot) {
        while slot.sender.app_can_write() {
            slot.sender.app_wrote();
        }
        if slot.paced {
            self.arm_tx(now, i, gen, slot);
        } else {
            loop {
                match slot.sender.next_slot(now) {
                    SendSlot::Blocked => break,
                    SendSlot::New(idx) | SendSlot::Retransmit(idx) => {
                        self.transmit(now, i, gen, slot, idx)
                    }
                }
            }
        }
    }

    /// First pump after open (also fills the app buffer).
    fn pump(&mut self, now: SimTime, i: u32) {
        let gen = self.gens[i as usize];
        let Some(mut slot) = self.slots[i as usize].take() else { return };
        self.drive(now, i, gen, &mut slot);
        self.rearm_timer(now, i, gen, &mut slot);
        self.slots[i as usize] = Some(slot);
    }

    /// Schedule the next paced transmit if one is due and none pending.
    fn arm_tx(&mut self, now: SimTime, i: u32, gen: u32, slot: &mut FlowSlot) {
        if slot.paced && !slot.tx_armed && slot.sender.can_send() {
            let at = slot.next_pace_at.max(now);
            self.q.push(at, FlowEvent::Tx { slot: i, gen });
            slot.tx_armed = true;
        }
    }

    /// Push one burst through the class bottleneck: FIFO queueing
    /// behind `busy_until`, tail drop past the buffer cap, delivery
    /// (data + returning ACK) one RTT after serialization.
    fn transmit(&mut self, now: SimTime, i: u32, gen: u32, slot: &mut FlowSlot, idx: u64) {
        slot.sender.mark_transmitted(idx, now);
        let class = &self.p.classes[slot.class];
        let start = self.busy_until[slot.class].max(now);
        let backlog = class.bottleneck.bytes_in(start.saturating_since(now));
        if backlog + self.p.burst > class.buffer {
            // Tail drop: the sender discovers it via SACK holes or its
            // loss timers. `busy_until` does not advance — the burst
            // never occupied the link.
            self.drops += 1;
            return;
        }
        let ser = class.bottleneck.serialize_time(self.p.burst);
        self.busy_until[slot.class] = start + ser;
        self.wire_bursts += 1;
        self.q.push(start + ser + class.rtt, FlowEvent::Deliver { slot: i, gen, idx });
    }

    /// Keep exactly one wheel timer matching the sender's earliest
    /// deadline. Deadline changes cancel the stale timer through the
    /// tombstone path; identical deadlines are left armed (no churn).
    fn rearm_timer(&mut self, now: SimTime, i: u32, gen: u32, slot: &mut FlowSlot) {
        let desired = slot.sender.timer_deadline();
        match (slot.timer, desired) {
            (None, None) => {}
            (Some((_, at, kind)), Some((want_at, want_kind)))
                if at == want_at.max(now) && kind == want_kind => {}
            (cur, want) => {
                if let Some((id, _, _)) = cur {
                    if self.q.cancel_timer(id) {
                        self.timers_cancelled += 1;
                    }
                    slot.timer = None;
                }
                if let Some((at, kind)) = want {
                    // A deadline already in the past fires "now": clamp
                    // so the queue never sees a past push.
                    let at = at.max(now);
                    let id = self.q.schedule_timer(at, FlowEvent::Timer { slot: i, gen });
                    slot.timer = Some((id, at, kind));
                }
            }
        }
    }

    // ---- run finish ------------------------------------------------------

    fn finish(self) -> Result<FleetResult, SimError> {
        let now = self.q.now();
        if self.active != 0 {
            return Err(SimError::StateCorruption {
                at: now,
                what: format!("queue drained with {} flows still open", self.active),
            });
        }
        let health = self.q.health();
        if health.slab_slots != health.free_slots {
            return Err(SimError::StateCorruption {
                at: now,
                what: format!(
                    "timer slab leaked: {} slots allocated, {} free",
                    health.slab_slots, health.free_slots
                ),
            });
        }
        if health.len != 0 {
            return Err(SimError::StateCorruption {
                at: now,
                what: format!("{} events still pending after drain", health.len),
            });
        }
        let late_dropped = self.agg.late();
        Ok(FleetResult {
            name: self.p.name.clone(),
            flows_opened: self.flows_opened,
            flows_served: self.flows_served,
            peak_active: self.peak_active,
            peak_slots: self.slots.len(),
            events: self.events,
            past_clamps: self.q.past_clamps(),
            total_bytes: self.total_bytes,
            finished_at: now,
            fct: self.fct,
            slowdown: self.slowdown,
            factors: self.factors,
            intervals: self.agg.finish(),
            late_dropped,
            drops: self.drops,
            wire_bursts: self.wire_bursts,
            rto_events: self.rto_events,
            tlp_events: self.tlp_events,
            retx_bursts: self.retx_bursts,
            timers_cancelled: self.timers_cancelled,
            health,
        })
    }
}

/// Judge what limited a flow from its sender counters, in diagnostic
/// priority order (an RTO dwarfs everything; loss recovery dominates
/// window shaping; a mostly-cwnd-limited flow was window-bound).
fn classify_flow(slot: &FlowSlot) -> FlowFactor {
    let s = &slot.sender;
    if s.rto_events() > 0 {
        FlowFactor::RtoStall
    } else if s.retx_bursts() > 0 || s.tlp_events() > 0 {
        FlowFactor::LossRecovery
    } else if s.acks_processed() > 0 && s.cwnd_limited_acks() * 2 >= s.acks_processed() {
        FlowFactor::CwndLimited
    } else {
        FlowFactor::BottleneckShare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, Diurnal, FleetClass, SizeDist};
    use simcore::BitRate;
    use tcpstack::CcAlgorithm;

    fn wan_class(pacing: bool) -> FleetClass {
        FleetClass {
            name: "wan".into(),
            weight: 1,
            cc: CcAlgorithm::Cubic,
            pacing,
            rtt: SimDuration::from_millis(10),
            bottleneck: BitRate::gbps(10.0),
            buffer: Bytes::mib(8),
        }
    }

    fn small_profile(rate: f64, secs: u64) -> FleetProfile {
        let mut p = FleetProfile::new(
            "unit",
            ArrivalProcess::Poisson { rate_per_sec: rate },
            SizeDist::BoundedPareto { alpha: 1.3, min_bytes: 65_536, max_bytes: 4 << 20 },
        );
        p.duration = SimDuration::from_secs(secs);
        p.classes.push(wan_class(false));
        p
    }

    #[test]
    fn serves_every_arrival_and_balances_the_slab() {
        let r = FleetSim::new(small_profile(500.0, 2))
            .expect("profile is valid")
            .with_event_budget(50_000_000)
            .run()
            .expect("run completes");
        assert!(r.flows_opened > 500, "expected ~1000 arrivals, got {}", r.flows_opened);
        assert_eq!(r.flows_opened, r.flows_served);
        assert_eq!(r.late_dropped, 0, "closes are recorded at now; seals trail");
        assert_eq!(r.health.slab_slots, r.health.free_slots);
        assert_eq!(r.health.len, 0);
        assert_eq!(r.past_clamps, 0);
        assert_eq!(r.fct.count(), r.flows_served);
        assert!(r.peak_active >= 1);
        assert!(r.peak_slots <= r.peak_active, "slots are reused, never hoarded");
        assert!(!r.intervals.is_empty());
        let interval_flows: u64 =
            r.intervals.iter().filter_map(|rec| rec.metrics.get("fct_us")).map(|h| h.count()).sum();
        assert_eq!(interval_flows, r.flows_served, "every close lands in an interval");
    }

    #[test]
    fn fct_quantiles_are_monotone() {
        let r = FleetSim::new(small_profile(800.0, 2))
            .expect("profile is valid")
            .with_event_budget(50_000_000)
            .run()
            .expect("run completes");
        let p50 = r.fct_us(0.50).expect("flows completed");
        let p99 = r.fct_us(0.99).expect("flows completed");
        let p999 = r.fct_us(0.999).expect("flows completed");
        assert!(p50 <= p99 && p99 <= p999, "p50 {p50} <= p99 {p99} <= p999 {p999}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = FleetSim::new(small_profile(300.0, 1))
            .expect("valid")
            .run()
            .expect("run completes");
        let b = FleetSim::new(small_profile(300.0, 1))
            .expect("valid")
            .run()
            .expect("run completes");
        assert_eq!(a.flows_served, b.flows_served);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fct, b.fct);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(
            a.intervals.iter().map(|r| r.to_json_line()).collect::<Vec<_>>(),
            b.intervals.iter().map(|r| r.to_json_line()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn mmpp_diurnal_profile_completes_with_mixed_classes() {
        let mut p = FleetProfile::new(
            "mixed",
            ArrivalProcess::Mmpp2 {
                calm_rate: 50.0,
                burst_rate: 2_000.0,
                mean_calm_secs: 0.2,
                mean_burst_secs: 0.02,
            },
            SizeDist::LogNormal { median_bytes: 256_000.0, sigma: 1.2 },
        );
        p.duration = SimDuration::from_secs(2);
        p.classes.push(wan_class(false));
        p.classes.push(FleetClass {
            name: "paced".into(),
            weight: 2,
            cc: CcAlgorithm::BbrV3,
            pacing: true,
            rtt: SimDuration::from_millis(1),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(4),
        });
        p.diurnal = Some(Diurnal { amplitude: 0.5, period_secs: 1.0 });
        let r = FleetSim::new(p)
            .expect("valid")
            .with_event_budget(100_000_000)
            .run()
            .expect("run completes");
        assert_eq!(r.flows_opened, r.flows_served);
        assert_eq!(r.health.slab_slots, r.health.free_slots);
        assert!(r.timers_cancelled > 0, "completing flows must cancel armed loss timers");
    }

    #[test]
    fn shallow_buffer_incast_drops_and_recovers() {
        let mut p = FleetProfile::new(
            "incast",
            ArrivalProcess::Mmpp2 {
                calm_rate: 10.0,
                burst_rate: 20_000.0,
                mean_calm_secs: 0.05,
                mean_burst_secs: 0.005,
            },
            SizeDist::BoundedPareto { alpha: 1.1, min_bytes: 32_768, max_bytes: 1 << 20 },
        );
        p.burst = Bytes::kib(16);
        p.duration = SimDuration::from_millis(500);
        p.classes.push(FleetClass {
            name: "leaf".into(),
            weight: 1,
            cc: CcAlgorithm::Cubic,
            pacing: false,
            rtt: SimDuration::from_micros(200),
            bottleneck: BitRate::gbps(10.0),
            buffer: Bytes::kib(256),
        });
        let r = FleetSim::new(p)
            .expect("valid")
            .with_event_budget(100_000_000)
            .run()
            .expect("incast drains despite drops");
        assert_eq!(r.flows_opened, r.flows_served);
        assert!(r.drops > 0, "a shallow buffer under incast must tail-drop");
        assert!(
            r.factors.contains_key("rto_stall") || r.factors.contains_key("loss_recovery"),
            "dropped flows must be classified as loss-limited: {:?}",
            r.factors.keys().collect::<Vec<_>>()
        );
        let rollup = r.tail_rollup();
        assert!(!rollup.is_empty());
    }

    #[test]
    fn event_budget_trips_the_watchdog() {
        let err = FleetSim::new(small_profile(500.0, 2))
            .expect("valid")
            .with_event_budget(50)
            .run()
            .expect_err("50 events cannot serve ~1000 flows");
        assert!(matches!(
            err,
            SimError::Stalled { trip: WatchdogTrip::BudgetExhausted { .. }, .. }
        ));
    }

    #[test]
    fn invalid_profile_is_rejected() {
        let mut p = small_profile(100.0, 1);
        p.classes.clear();
        assert!(matches!(FleetSim::new(p), Err(SimError::InvalidConfig(_))));
    }
}
