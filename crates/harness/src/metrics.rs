//! Run-introspection hub: the metrics registry, live heartbeat, phase
//! spans, and exposition writers behind `--metrics <dir>` /
//! `REPRO_METRICS`.
//!
//! One [`MetricsHub`] is created per `repro` invocation and threaded
//! (as `Option<Arc<MetricsHub>>`) through [`crate::ctx::RunCtx`] into
//! the harness and supervisor. Everything here honours the
//! observer-neutrality contract (DESIGN.md §6h): the hub is consulted
//! only *between* repetitions and at checkpoint barriers, never inside
//! the event loop, and no simulation input (seeds, options, cache
//! eligibility) depends on whether it exists — so metrics-on runs are
//! bit-identical to metrics-off runs.
//!
//! Outputs, all under the metrics directory:
//!
//! * `repro.openmetrics` — OpenMetrics text exposition of the full
//!   registry (counters, gauges, histogram summaries), written at the
//!   end of the invocation;
//! * `<label>_rep<i>.intervals.jsonl` — per-repetition fixed-width
//!   interval series (goodput per stream, plus rtt/retransmit
//!   distributions when the report carries telemetry), one JSON line
//!   per simulated second, streamed through [`obs::IntervalAggregator`];
//! * `spans.jsonl` — phase spans (`setup`/`steady`/`drain` in wall
//!   time, `warmup`/`steady` in sim time, `checkpoint`, `cache_lookup`).
//!
//! The heartbeat is a throttled (≥ 1 s apart) single-line progress
//! report on stderr: repetitions done/cached/failed, aggregate
//! events/s, and an ETA extrapolated from mean repetition wall time
//! over the scheduler gate's parallelism.

use crate::sched;
use iperf3sim::Iperf3Report;
use obs::{render_openmetrics, HdrHistogram, IntervalAggregator, IntervalRecord, Recorder, SpanRecord};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Invocation-wide count of interval samples dropped for arriving
/// below an aggregator watermark. Global (not per-hub) so the repro
/// summary can warn about silent data loss even for code paths that
/// aggregated without a metrics hub attached.
static LATE_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Note `n` late-dropped interval samples in the invocation-wide
/// counter (see [`late_dropped_total`]).
pub fn note_late_drops(n: u64) {
    if n > 0 {
        LATE_DROPPED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total interval samples silently dropped as late this invocation.
/// Nonzero means an aggregation bug (a watermark advanced past live
/// samples) — the repro summary surfaces it as a warning.
pub fn late_dropped_total() -> u64 {
    LATE_DROPPED.load(Ordering::Relaxed)
}

/// Minimum spacing between heartbeat lines.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(1);

/// The per-invocation metrics hub. See the module docs.
#[derive(Debug)]
pub struct MetricsHub {
    dir: PathBuf,
    recorder: Recorder,
    spans: Mutex<Vec<SpanRecord>>,
    start: Instant,
    // Heartbeat state. Counters are atomics (repetitions finish on the
    // scheduler's worker threads); the emission throttle is a mutex
    // because only one thread may print at a time anyway.
    expected: AtomicU64,
    done: AtomicU64,
    cached: AtomicU64,
    failed: AtomicU64,
    events: AtomicU64,
    busy_nanos: AtomicU64,
    last_emit: Mutex<Instant>,
}

impl MetricsHub {
    /// Create the hub, making sure the output directory exists.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<MetricsHub> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let now = Instant::now();
        Ok(MetricsHub {
            dir,
            recorder: Recorder::new(),
            spans: Mutex::new(Vec::new()),
            start: now,
            expected: AtomicU64::new(0),
            done: AtomicU64::new(0),
            cached: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            events: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            last_emit: Mutex::new(now - HEARTBEAT_EVERY),
        })
    }

    /// The metrics output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The metric registry.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Wall-clock seconds since the hub was created (the time base for
    /// wall-unit spans).
    pub fn wall_now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    // ---- heartbeat -------------------------------------------------

    /// Announce `n` upcoming repetitions (called per scenario batch; the
    /// ETA denominator).
    pub fn expect_reps(&self, n: u64) {
        self.expected.fetch_add(n, Ordering::Relaxed);
    }

    /// Add dispatched simulation events (called by the supervisor per
    /// stepping round; feeds the aggregate events/s readout).
    pub fn add_events(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one finished repetition and maybe emit a heartbeat line.
    /// `cached` repetitions were served from the run cache; `failed`
    /// ones exhausted their retries.
    pub fn rep_finished(&self, cached: bool, failed: bool, wall: Duration) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_nanos.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.recorder.describe("repro_reps", "Repetitions finished (cached, simulated or failed)");
        self.recorder.counter_add("repro_reps", 1);
        if cached {
            self.recorder.describe("repro_reps_cached", "Repetitions served from the run cache");
            self.recorder.counter_add("repro_reps_cached", 1);
        }
        if failed {
            self.recorder.describe("repro_reps_failed", "Repetitions that exhausted their retries");
            self.recorder.counter_add("repro_reps_failed", 1);
        }
        self.recorder.describe("repro_rep_wall_ms", "Wall-clock milliseconds per repetition");
        self.recorder.hist_record("repro_rep_wall_ms", wall.as_millis() as u64);
        self.maybe_heartbeat(false);
    }

    /// Emit a heartbeat line if the last one is old enough (or always,
    /// for the `final_heartbeat` flush).
    fn maybe_heartbeat(&self, force: bool) {
        {
            let mut last = self.last_emit.lock().expect("heartbeat throttle");
            if !force && last.elapsed() < HEARTBEAT_EVERY {
                return;
            }
            *last = Instant::now();
        }
        let done = self.done.load(Ordering::Relaxed);
        let expected = self.expected.load(Ordering::Relaxed).max(done);
        let cached = self.cached.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let events = self.events.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = events as f64 / elapsed;
        // ETA: remaining reps at the mean busy time per rep, spread
        // over the scheduler gate's parallelism.
        let eta = if done > 0 && expected > done {
            let mean_secs = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9 / done as f64;
            let lanes = sched::global_gate().capacity().max(1) as f64;
            format!("{:.0}s", (expected - done) as f64 * mean_secs / lanes)
        } else {
            "-".to_string()
        };
        eprintln!(
            "heartbeat: reps {done}/{expected} ({cached} cached, {failed} failed) | {} events/s | ETA {eta}",
            human_rate(rate),
        );
    }

    /// Emit the closing heartbeat line regardless of the throttle.
    pub fn final_heartbeat(&self) {
        self.maybe_heartbeat(true);
    }

    // ---- engine health ---------------------------------------------

    /// Fold an engine-health snapshot into the registry as gauges
    /// (last sample wins) and depth histograms. Called at checkpoint
    /// barriers and at the end of each supervised round.
    pub fn sample_queue_health(&self, h: simcore::QueueHealth) {
        let r = &self.recorder;
        r.describe("engine_queue_near_depth", "Live events in the near-heap rung");
        r.gauge_set("engine_queue_near_depth", h.near_depth as f64);
        r.describe("engine_queue_ring_occupancy", "Live events parked in wheel ring buckets");
        r.gauge_set("engine_queue_ring_occupancy", h.ring_occupancy as f64);
        r.describe("engine_queue_overflow_live", "Live events spilled past the wheel horizon");
        r.gauge_set("engine_queue_overflow_live", h.overflow_live as f64);
        r.describe("engine_queue_stale_timers", "Cancelled-timer tombstones awaiting drain");
        r.gauge_set("engine_queue_stale_timers", h.stale_timers as f64);
        r.describe("engine_queue_slab_slots", "Allocated timer-payload slab slots");
        r.gauge_set("engine_queue_slab_slots", h.slab_slots as f64);
        r.describe("engine_queue_len", "Total pending live events");
        r.gauge_set("engine_queue_len", h.len as f64);
        r.describe("engine_queue_depth", "Distribution of total queue depth across samples");
        r.hist_record("engine_queue_depth", h.len as u64);
        if h.past_clamps > 0 {
            r.describe("engine_past_clamps", "Past-time pushes clamped to now (causality bugs)");
            r.gauge_set("engine_past_clamps", h.past_clamps as f64);
        }
    }

    // ---- spans -----------------------------------------------------

    /// Append one phase span (see [`obs::SpanRecord`] for units).
    pub fn span(&self, scope: impl Into<String>, name: impl Into<String>, unit: &'static str, start: f64, dur: f64) {
        self.spans.lock().expect("span sink").push(SpanRecord {
            scope: scope.into(),
            name: name.into(),
            unit,
            start,
            dur,
        });
    }

    /// Time `f` on the wall clock and record it as a span.
    pub fn time_span<T>(&self, scope: &str, name: &str, f: impl FnOnce() -> T) -> T {
        let start = self.wall_now();
        let out = f();
        self.span(scope, name, "wall_s", start, self.wall_now() - start);
        out
    }

    // ---- exposition ------------------------------------------------

    /// Write the OpenMetrics exposition of the full registry to
    /// `repro.openmetrics` and the collected spans to `spans.jsonl`.
    /// Returns the OpenMetrics path.
    pub fn write_exposition(&self) -> io::Result<PathBuf> {
        let spans = self.spans.lock().expect("span sink");
        if !spans.is_empty() {
            let mut body = String::new();
            for span in spans.iter() {
                body.push_str(&span.to_json_line());
                body.push('\n');
            }
            std::fs::write(self.dir.join("spans.jsonl"), body)?;
        }
        drop(spans);
        let path = self.dir.join("repro.openmetrics");
        std::fs::write(&path, render_openmetrics(&self.recorder.snapshot()))?;
        Ok(path)
    }

    /// Fold one surviving repetition's report into a fixed-width (1 s)
    /// interval series and write it as `<label>_rep<i>.intervals.jsonl`.
    /// Always has the per-stream goodput distribution (reports carry
    /// 1 s interval bins unconditionally); rtt/retransmit distributions
    /// appear when the report carries telemetry samples.
    pub fn write_interval_series(
        &self,
        label: &str,
        rep: usize,
        report: &Iperf3Report,
    ) -> io::Result<PathBuf> {
        let agg = aggregate_report_intervals(report);
        // The batch fold above never seals mid-stream, so late() should
        // be structurally zero — but if that invariant ever breaks, the
        // drops must land in the ledger, not vanish.
        self.note_late_drops(agg.late());
        let series = agg.finish();
        self.write_interval_records(label, rep, &series)
    }

    /// Write an already-aggregated interval series (e.g. a streaming
    /// fleet run's) as `<label>_rep<i>.intervals.jsonl`.
    pub fn write_interval_records(
        &self,
        label: &str,
        rep: usize,
        series: &[IntervalRecord],
    ) -> io::Result<PathBuf> {
        let mut body = String::with_capacity(series.len() * 128);
        for rec in series {
            body.push_str(&rec.to_json_line());
            body.push('\n');
        }
        let name = format!("{}_rep{rep}.intervals.jsonl", crate::trace::sanitize_label(label));
        let path = self.dir.join(name);
        std::fs::write(&path, body)?;
        Ok(path)
    }

    /// Fold late-dropped interval samples into both the registry
    /// counter (`late_dropped_total` in OpenMetrics) and the
    /// invocation-wide total behind [`late_dropped_total`]. Call with
    /// `n = 0` too: that registers the counter so the exposition always
    /// carries it and validators can assert it is zero.
    pub fn note_late_drops(&self, n: u64) {
        self.recorder.describe(
            "late_dropped",
            "Interval samples dropped for arriving below an aggregator watermark",
        );
        self.recorder.counter_add("late_dropped", n);
        note_late_drops(n);
    }
}

/// Fold a report into a 1 s-wide interval aggregator: per-stream
/// goodput (Mbps) from the interval bins every report carries, plus
/// smoothed-RTT (µs) and per-tick retransmit distributions when
/// telemetry rode along. Kept separate from the hub so tests can
/// exercise the fold without touching the filesystem.
pub fn aggregate_report_intervals(report: &Iperf3Report) -> IntervalAggregator {
    let mut agg = IntervalAggregator::new(1);
    for stream in &report.streams {
        for (sec, rate) in stream.intervals.iter().enumerate() {
            agg.record(sec as u64, "goodput_mbps", (rate.as_gbps() * 1000.0).max(0.0) as u64);
        }
    }
    if let Some(telemetry) = &report.telemetry {
        for flow in &telemetry.flows {
            // `retr_packets` is cumulative (like `bytes_retrans` in
            // `ss -tin`); the interval series wants per-tick deltas.
            let mut prev_retr = 0u64;
            for (t, sample) in flow.samples.iter() {
                let sec = t.as_secs_f64().max(0.0) as u64;
                if let Some(srtt) = sample.srtt {
                    agg.record(sec, "srtt_us", (srtt.as_secs_f64() * 1e6).max(0.0) as u64);
                }
                agg.record(sec, "retr_packets", sample.retr_packets.saturating_sub(prev_retr));
                prev_retr = sample.retr_packets;
            }
        }
    }
    agg
}

/// `1234567.0` → `"1.2M"` — compact rates for the heartbeat line.
fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.1}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Fold final cache statistics into the registry (called per
/// experiment by `repro` with that experiment's private cache handle).
pub fn fold_cache_stats(recorder: &Recorder, stats: &crate::cache::CacheStats) {
    recorder.describe("cache_hits", "Repetitions served from the run cache");
    recorder.counter_add("cache_hits", stats.hits());
    recorder.describe("cache_misses", "Cache lookups that simulated instead");
    recorder.counter_add("cache_misses", stats.misses());
    recorder.describe("cache_stores", "Reports written to the run cache");
    recorder.counter_add("cache_stores", stats.stores());
    recorder.describe("cache_recovered_corrupt", "Corrupt cache entries recomputed");
    recorder.counter_add("cache_recovered_corrupt", stats.corrupt_recoveries());
    recorder.describe("cache_recovered_truncated", "Truncated cache entries recomputed");
    recorder.counter_add("cache_recovered_truncated", stats.truncated_recoveries());
    recorder.describe("cache_recovered_stale", "Stale cache entries recomputed");
    recorder.counter_add("cache_recovered_stale", stats.stale_recoveries());
}

/// Fold the global run ledger and (when present) chaos statistics into
/// the registry — called once at the end of a `repro` invocation.
pub fn fold_run_totals(
    recorder: &Recorder,
    ledger: &crate::supervise::RunLedger,
    chaos: Option<&crate::chaos::ChaosStats>,
) {
    let records = ledger.snapshot();
    let expected: usize = records.iter().map(|r| r.expected).sum();
    let completed: usize = records.iter().map(|r| r.completed).sum();
    let failed: usize = records.iter().map(|r| r.failed.len()).sum();
    recorder.describe("ledger_expected_reps", "Repetitions the harness was asked for");
    recorder.counter_add("ledger_expected_reps", expected as u64);
    recorder.describe("ledger_completed_reps", "Repetitions that produced a report");
    recorder.counter_add("ledger_completed_reps", completed as u64);
    recorder.describe("ledger_failed_reps", "Repetitions lost after retries");
    recorder.counter_add("ledger_failed_reps", failed as u64);
    recorder.describe("ledger_scenarios", "Scenarios recorded in the run ledger");
    recorder.counter_add("ledger_scenarios", records.len() as u64);
    if let Some(stats) = chaos {
        recorder.describe("chaos_worker_kills", "Chaos-injected worker kills");
        recorder.counter_add("chaos_worker_kills", stats.kills());
        recorder.describe("chaos_resumes", "Checkpoint resumes after chaos kills");
        recorder.counter_add("chaos_resumes", stats.resumes());
        recorder.describe("chaos_cache_corruptions", "Chaos-poisoned cache entries");
        recorder.counter_add("chaos_cache_corruptions", stats.cache_corruptions());
        recorder.describe("chaos_trace_failures", "Chaos-failed trace writes");
        recorder.counter_add("chaos_trace_failures", stats.trace_failures());
    }
}

/// Fold a retry budget's final state into the registry.
pub fn fold_budget(recorder: &Recorder, budget: &crate::supervise::ErrorBudget) {
    recorder.describe("retries_spent", "Retry tokens spent across experiments");
    recorder.counter_add("retries_spent", budget.spent());
    recorder.describe("retries_budget", "Retry tokens budgeted across experiments");
    recorder.counter_add("retries_budget", budget.initial());
}

/// A histogram of per-repetition sim-event counts, merged losslessly
/// into the registry by the supervisor (the parallel-shard fold).
pub fn fold_events_hist(recorder: &Recorder, shard: &HdrHistogram) {
    recorder.describe("rep_sim_events", "Simulation events dispatched per repetition");
    recorder.hist_merge("rep_sim_events", shard);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rates_read_well() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(4_300.0), "4.3k");
        assert_eq!(human_rate(7_120_000.0), "7.1M");
        assert_eq!(human_rate(2.5e9), "2.5G");
    }

    #[test]
    fn hub_writes_exposition_and_spans() {
        let dir = std::env::temp_dir().join(format!("metrics_hub_{}", std::process::id()));
        let hub = MetricsHub::new(&dir).expect("hub dir");
        hub.recorder().counter_add("cache_hits", 2);
        hub.span("fig05/rep0", "steady", "sim_s", 0.0, 4.0);
        let path = hub.write_exposition().expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("# TYPE cache_hits counter"));
        assert!(text.contains("cache_hits_total 2"));
        assert!(text.ends_with("# EOF\n"));
        let spans = std::fs::read_to_string(dir.join("spans.jsonl")).expect("spans");
        assert!(spans.contains("\"name\":\"steady\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heartbeat_counters_accumulate() {
        let dir = std::env::temp_dir().join(format!("metrics_hb_{}", std::process::id()));
        let hub = MetricsHub::new(&dir).expect("hub dir");
        hub.expect_reps(4);
        hub.add_events(1000);
        hub.rep_finished(true, false, Duration::from_millis(5));
        hub.rep_finished(false, true, Duration::from_millis(7));
        assert_eq!(hub.done.load(Ordering::Relaxed), 2);
        assert_eq!(hub.cached.load(Ordering::Relaxed), 1);
        assert_eq!(hub.failed.load(Ordering::Relaxed), 1);
        let snap = hub.recorder().snapshot();
        assert_eq!(snap.hists["repro_rep_wall_ms"].count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_health_lands_as_gauges() {
        let dir = std::env::temp_dir().join(format!("metrics_qh_{}", std::process::id()));
        let hub = MetricsHub::new(&dir).expect("hub dir");
        hub.sample_queue_health(simcore::QueueHealth {
            near_depth: 3,
            ring_occupancy: 5,
            overflow_live: 1,
            stale_timers: 2,
            slab_slots: 8,
            free_slots: 6,
            len: 9,
            past_clamps: 0,
        });
        let snap = hub.recorder().snapshot();
        assert_eq!(snap.gauges["engine_queue_near_depth"], 3.0);
        assert_eq!(snap.gauges["engine_queue_len"], 9.0);
        assert_eq!(snap.hists["engine_queue_depth"].count(), 1);
        assert!(!snap.gauges.contains_key("engine_past_clamps"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
