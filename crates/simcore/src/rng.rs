//! Seedable randomness for reproducible runs.
//!
//! Every simulation run owns one [`SimRng`], seeded by the harness. All
//! stochastic elements — service-time jitter, cross-traffic burst
//! arrivals, flow start offsets, `irqbalance` core placement — draw from
//! it, so a (config, seed) pair fully determines a run.
//!
//! The generator is a self-contained xoshiro256++ (public domain
//! algorithm by Blackman & Vigna), state-expanded from the 64-bit seed
//! with SplitMix64. Keeping the PRNG in-tree means the simulator has no
//! external dependency whose internals could change a seeded stream
//! between toolchain updates.

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulation's random source (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator (e.g. one per flow) so that
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted");
        if lo == hi {
            return lo;
        }
        let v = lo + (hi - lo) * self.unit();
        // Guard against floating-point rounding landing exactly on `hi`.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "uniform_u64 needs a non-empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the rejection loop runs at
        // most a handful of times even for pathological spans.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A multiplicative jitter factor in `[1-amplitude, 1+amplitude]`.
    ///
    /// Used to perturb CPU service times a few percent per burst, which
    /// is what gives repeated runs the run-to-run variance the paper's
    /// stdev columns report.
    pub fn jitter(&mut self, amplitude: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&amplitude), "jitter amplitude out of range");
        if amplitude == 0.0 {
            return 1.0;
        }
        1.0 + self.uniform(-amplitude, amplitude)
    }

    /// Exponentially distributed value with the given mean (burst/idle
    /// durations for on-off cross traffic).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        let u = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Raw u64 (for deriving seeds).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should not match");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // The parents stay in sync regardless of child usage.
        for _ in 0..10 {
            c1.next_u64();
        }
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let j = rng.jitter(0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of bounds");
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn exponential_mean_approximate() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.2, "estimated mean {est} too far from {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
        for _ in 0..100 {
            let v = rng.uniform_u64(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.uniform_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn chance_rate_approximate() {
        let mut rng = SimRng::seed_from_u64(17);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "chance(0.25) hit rate {rate}");
    }
}
