//! The complete host configuration — a DTN "build sheet".
//!
//! Bundles CPU, NIC, kernel, sysctls, offloads, core affinity and the
//! remaining §III-D knobs (`iommu=pt`, ring sizing, SMT, governor) into
//! one value the simulator consumes. Presets construct the paper's
//! AmLight and ESnet hosts.

use crate::cpu::{CoreAllocation, CpuArch};
use crate::kernel::KernelVersion;
use crate::offload::OffloadConfig;
use crate::sysctl::SysctlConfig;
use crate::virt::VirtMode;
use nethw::NicModel;
use simcore::Bytes;

/// Everything about one host that affects throughput.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Display name.
    pub name: String,
    /// CPU package.
    pub cpu: CpuArch,
    /// NIC model.
    pub nic: NicModel,
    /// Kernel version.
    pub kernel: KernelVersion,
    /// Sysctl set.
    pub sysctl: SysctlConfig,
    /// GSO/GRO/MTU configuration.
    pub offload: OffloadConfig,
    /// IRQ/app core placement.
    pub cores: CoreAllocation,
    /// Bare metal or VM.
    pub virt: VirtMode,
    /// `iommu=pt` set on the kernel command line (§III-D).
    pub iommu_pt: bool,
    /// RX ring entries if tuned via `ethtool -G` (None = driver default).
    pub ring_entries: Option<u32>,
    /// CPU governor pinned to `performance`.
    pub performance_governor: bool,
    /// SMT (hyper-threading) disabled.
    pub smt_off: bool,
}

impl HostConfig {
    /// An AmLight testbed host: dual Intel Xeon 6346, ConnectX-5
    /// (100 GbE), run inside the tuned passthrough VM (§III-E/H), with
    /// the full §III-D tuning applied.
    pub fn amlight_intel(kernel: KernelVersion) -> Self {
        HostConfig {
            name: format!("amlight-intel-{kernel}"),
            cpu: CpuArch::IntelXeon6346,
            nic: NicModel::ConnectX5,
            kernel,
            sysctl: SysctlConfig::paper_tuned(),
            offload: OffloadConfig::paper_default(),
            cores: CoreAllocation::paper_tuned(),
            virt: VirtMode::PassthroughVm,
            iommu_pt: true,
            ring_entries: None, // ring tuning only helped on AMD (§III-D)
            performance_governor: true,
            smt_off: true,
        }
    }

    /// An AmLight host on bare metal (Debian 11 / kernel 5.10 in the
    /// Fig. 4 comparison).
    pub fn amlight_intel_baremetal(kernel: KernelVersion) -> Self {
        let mut cfg = Self::amlight_intel(kernel);
        cfg.name = format!("amlight-intel-bm-{kernel}");
        cfg.virt = VirtMode::Baremetal;
        cfg
    }

    /// An ESnet testbed host: dual AMD EPYC 73F3, ConnectX-7
    /// (200 GbE), bare metal, full tuning including the AMD-specific
    /// 8192-entry ring (§III-D).
    pub fn esnet_amd(kernel: KernelVersion) -> Self {
        HostConfig {
            name: format!("esnet-amd-{kernel}"),
            cpu: CpuArch::AmdEpyc73F3,
            nic: NicModel::ConnectX7,
            kernel,
            sysctl: SysctlConfig::paper_tuned(),
            offload: OffloadConfig::paper_default(),
            cores: CoreAllocation::paper_tuned(),
            virt: VirtMode::Baremetal,
            iommu_pt: true,
            ring_entries: Some(8192),
            performance_governor: true,
            smt_off: true,
        }
    }

    /// An ESnet *production* DTN (Table III): AMD-class host with a
    /// 100 GbE ConnectX-6 Dx, stock-LTS kernel 5.15, tuned sysctls.
    /// (The paper doesn't give the production hardware; this profile is
    /// the documented assumption — see DESIGN.md.)
    pub fn esnet_prod_dtn() -> Self {
        HostConfig {
            name: "esnet-prod-dtn".into(),
            cpu: CpuArch::AmdEpyc73F3,
            nic: NicModel::ConnectX6Dx,
            kernel: KernelVersion::L5_15,
            sysctl: SysctlConfig::paper_tuned(),
            offload: OffloadConfig::paper_default(),
            cores: CoreAllocation::paper_tuned(),
            virt: VirtMode::Baremetal,
            iommu_pt: true,
            ring_entries: Some(8192),
            performance_governor: true,
            smt_off: true,
        }
    }

    /// A deliberately untuned host: stock sysctls, irqbalance on, no
    /// `iommu=pt`, default governor. Useful for the "why tuning
    /// matters" examples and ablations.
    pub fn untuned(cpu: CpuArch, nic: NicModel, kernel: KernelVersion) -> Self {
        HostConfig {
            name: format!("untuned-{kernel}"),
            cpu,
            nic,
            kernel,
            sysctl: SysctlConfig::stock(),
            offload: OffloadConfig::paper_default(),
            cores: CoreAllocation::stock(2 * cpu.cores_per_socket()),
            virt: VirtMode::Baremetal,
            iommu_pt: false,
            ring_entries: None,
            performance_governor: false,
            smt_off: false,
        }
    }

    /// Builder: set the kernel.
    pub fn with_kernel(mut self, kernel: KernelVersion) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: replace the sysctl set.
    pub fn with_sysctl(mut self, sysctl: SysctlConfig) -> Self {
        self.sysctl = sysctl;
        self
    }

    /// Builder: set `optmem_max` only.
    pub fn with_optmem(mut self, optmem: Bytes) -> Self {
        self.sysctl.optmem_max = optmem;
        self
    }

    /// Builder: replace the offload config.
    pub fn with_offload(mut self, offload: OffloadConfig) -> Self {
        self.offload = offload;
        self
    }

    /// Builder: set the virtualisation mode.
    pub fn with_virt(mut self, virt: VirtMode) -> Self {
        self.virt = virt;
        self
    }

    /// RX ring entries in effect (tuned or driver default).
    pub fn effective_ring_entries(&self) -> u32 {
        self.ring_entries.unwrap_or_else(|| self.nic.default_ring_entries())
    }

    /// Validate cross-field consistency. Returns a list of problems
    /// (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if let Err(e) = self.cores.validate() {
            problems.push(e);
        }
        if self.offload.hw_gro && !self.kernel.supports_hw_gro() {
            problems.push(format!("hw GRO enabled but kernel {} lacks it", self.kernel));
        }
        if self.offload.hw_gro && !self.nic.supports_hw_gro() {
            problems.push(format!("hw GRO enabled but {} lacks it", self.nic.name()));
        }
        if self.offload.big_tcp_active() && !self.kernel.supports_big_tcp_ipv4() {
            problems.push(format!("BIG TCP enabled but kernel {} lacks it", self.kernel));
        }
        if self.offload.mtu.as_u64() > 9216 {
            problems.push("MTU above jumbo-frame maximum".into());
        }
        problems
    }
}

impl simcore::Canonicalize for HostConfig {
    /// `name` is display-only and deliberately excluded: renaming a
    /// host must not re-seed or re-simulate its scenarios.
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_str("cpu", &format!("{:?}", self.cpu));
        c.put_str("nic", &format!("{:?}", self.nic));
        c.put_str("kernel", &format!("{:?}", self.kernel));
        c.scope("sysctl", |c| self.sysctl.canonicalize(c));
        c.scope("offload", |c| self.offload.canonicalize(c));
        c.scope("cores", |c| self.cores.canonicalize(c));
        c.put_str("virt", &format!("{:?}", self.virt));
        c.put_bool("iommu_pt", self.iommu_pt);
        match self.ring_entries {
            None => c.put_str("ring_entries", "default"),
            Some(n) => c.put_u64("ring_entries", n as u64),
        }
        c.put_bool("performance_governor", self.performance_governor);
        c.put_bool("smt_off", self.smt_off);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            HostConfig::amlight_intel(KernelVersion::L6_8),
            HostConfig::amlight_intel_baremetal(KernelVersion::L5_10),
            HostConfig::esnet_amd(KernelVersion::L5_15),
            HostConfig::esnet_prod_dtn(),
            HostConfig::untuned(CpuArch::IntelXeon6346, NicModel::ConnectX5, KernelVersion::L5_15),
        ] {
            assert!(cfg.validate().is_empty(), "{}: {:?}", cfg.name, cfg.validate());
        }
    }

    #[test]
    fn amlight_matches_paper_setup() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        assert_eq!(cfg.cpu, CpuArch::IntelXeon6346);
        assert_eq!(cfg.nic, NicModel::ConnectX5);
        assert_eq!(cfg.virt, VirtMode::PassthroughVm);
        assert!(cfg.cores.is_separated());
        assert_eq!(cfg.effective_ring_entries(), 1024);
    }

    #[test]
    fn esnet_ring_is_tuned() {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        assert_eq!(cfg.effective_ring_entries(), 8192);
        assert_eq!(cfg.nic, NicModel::ConnectX7);
    }

    #[test]
    fn validation_flags_bad_combinations() {
        let mut cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        cfg.offload.hw_gro = true; // kernel 6.8 lacks hw GRO
        assert!(!cfg.validate().is_empty());
    }

    #[test]
    fn builder_chain() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_5)
            .with_optmem(Bytes::kib(20))
            .with_virt(VirtMode::Baremetal);
        assert_eq!(cfg.sysctl.optmem_max, Bytes::kib(20));
        assert_eq!(cfg.virt, VirtMode::Baremetal);
        assert_eq!(cfg.kernel, KernelVersion::L6_5);
    }

    #[test]
    fn untuned_host_is_visibly_untuned() {
        let cfg =
            HostConfig::untuned(CpuArch::AmdEpyc73F3, NicModel::ConnectX7, KernelVersion::L5_15);
        assert!(!cfg.cores.is_separated());
        assert!(!cfg.iommu_pt);
        assert!(!cfg.sysctl.supports_fq_pacing());
    }
}
