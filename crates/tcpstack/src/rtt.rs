//! RTT estimation and RTO computation (RFC 6298), plus a windowed
//! min-RTT filter.
//!
//! `min_rtt` is *windowed* the way Linux's `tcp_min_rtt` is
//! (net/ipv4/tcp_input.c, `minmax_running_min`): an all-time minimum
//! never expires, so after a path change that *raises* the base RTT
//! (reroute, link flap onto a longer path) BBR and HyStart would keep a
//! stale propagation floor forever. The filter keeps the three best
//! (value, time) estimates staggered across a ~10 s window and forgets
//! anything older than the window.

use simcore::{SimDuration, SimTime};

/// Linux's minimum RTO (200 ms).
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Maximum RTO we allow (Linux caps at 120 s; tests never get there).
pub const MAX_RTO: SimDuration = SimDuration::from_secs(120);

/// Window over which the min-RTT filter remembers samples (Linux keeps
/// BBR's propagation filter at 10 s; `tcp_min_rtt_wlen` defaults to
/// 300 s but the shorter horizon is what matters for model-based CC).
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Windowed running-min over `(time, value)` samples: Linux's
/// `lib/minmax.c` estimator, mirrored for minima. Three staggered
/// estimates cover the window in O(1) space — no sample deque.
#[derive(Debug, Clone, Copy)]
struct MinRttFilter {
    window: SimDuration,
    /// Best, second-best and third-best (time, value), oldest first.
    s: [(SimTime, SimDuration); 3],
}

impl MinRttFilter {
    fn new(window: SimDuration) -> Self {
        let init = (SimTime::ZERO, SimDuration::from_secs(3600));
        MinRttFilter { window, s: [init; 3] }
    }

    /// Current windowed minimum.
    fn get(&self) -> SimDuration {
        self.s[0].1
    }

    /// Feed one measurement taken at `now`.
    fn update(&mut self, now: SimTime, meas: SimDuration) {
        // A new overall min, or an expired window, resets everything.
        if meas <= self.s[0].1 || now.saturating_since(self.s[2].0) > self.window {
            self.s = [(now, meas); 3];
            return;
        }
        if meas <= self.s[1].1 {
            self.s[1] = (now, meas);
            self.s[2] = (now, meas);
        } else if meas <= self.s[2].1 {
            self.s[2] = (now, meas);
        }
        self.subwin_update(now, meas);
    }

    /// Age out the best estimate as it passes through the window's
    /// quarter/half/full marks, so the filter "forgets" smoothly
    /// instead of snapping when the whole window expires.
    fn subwin_update(&mut self, now: SimTime, meas: SimDuration) {
        let dt = now.saturating_since(self.s[0].0);
        if dt > self.window {
            // Best estimate fell out of the window: promote the others
            // and take the new sample as third-best. At most three
            // passes (then all slots hold the fresh sample).
            self.s[0] = self.s[1];
            self.s[1] = self.s[2];
            self.s[2] = (now, meas);
            if now.saturating_since(self.s[0].0) > self.window {
                self.s[0] = self.s[1];
                self.s[1] = self.s[2];
                if now.saturating_since(self.s[0].0) > self.window {
                    self.s[0] = self.s[1];
                }
            }
        } else if self.s[1].0 == self.s[0].0 && dt > self.window / 4 {
            // Passed a quarter of the window without a new second-best:
            // start one so the succession is staggered.
            self.s[1] = (now, meas);
            self.s[2] = (now, meas);
        } else if self.s[2].0 == self.s[1].0 && dt > self.window / 2 {
            self.s[2] = (now, meas);
        }
    }
}

/// SRTT/RTTVAR estimator with a windowed min-RTT.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: MinRttFilter,
}

impl RttEstimator {
    /// New estimator with no samples yet.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: MinRttFilter::new(MIN_RTT_WINDOW),
        }
    }

    /// Feed one RTT sample observed at `now` (from a never-
    /// retransmitted burst — Karn's algorithm is the caller's
    /// responsibility).
    pub fn on_sample(&mut self, sample: SimDuration, now: SimTime) {
        self.min_rtt.update(now, sample);
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|
                let err = if sample > srtt { sample - srtt } else { srtt - sample };
                self.rttvar = SimDuration::from_nanos(
                    (3 * self.rttvar.as_nanos() + err.as_nanos()) / 4,
                );
                // SRTT = 7/8 SRTT + 1/8 sample
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + sample.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT; `fallback` before the first sample.
    pub fn srtt_or(&self, fallback: SimDuration) -> SimDuration {
        self.srtt.unwrap_or(fallback)
    }

    /// Smoothed RTT if at least one sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Lowest RTT observed within the last [`MIN_RTT_WINDOW`] (the
    /// propagation estimate BBR and HyStart rely on). Windowed so a
    /// path change that raises the base RTT is forgotten, not pinned.
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt.get()
    }

    /// Retransmission timeout: `SRTT + 4×RTTVAR`, clamped.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => (srtt + self.rttvar * 4).max(MIN_RTO).min(MAX_RTO),
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(SimDuration::from_millis(100), at(0.1));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(100));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new();
        for i in 0..100 {
            e.on_sample(SimDuration::from_millis(50), at(i as f64 * 0.05));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 0.5);
        // Stable samples → rttvar → 0 → RTO clamps at the 200 ms floor.
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::new();
        e.on_sample(SimDuration::from_millis(30), at(0.1));
        e.on_sample(SimDuration::from_millis(10), at(0.2));
        e.on_sample(SimDuration::from_millis(40), at(0.3));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(10));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            let ms = if i % 2 == 0 { 20 } else { 80 };
            e.on_sample(SimDuration::from_millis(ms), at(i as f64 * 0.08));
        }
        assert!(e.rto() > SimDuration::from_millis(100));
    }

    /// The satellite bug: a link flap mid-run reroutes the path onto a
    /// longer base RTT. The old all-time min pinned the floor at the
    /// pre-flap value forever; the windowed filter forgets it once the
    /// window slides past the flap.
    #[test]
    fn min_rtt_expires_after_path_flap() {
        let mut e = RttEstimator::new();
        // 2 s of steady 10 ms samples on the original path.
        let mut t = 0.0;
        while t < 2.0 {
            e.on_sample(SimDuration::from_millis(10), at(t));
            t += 0.1;
        }
        assert_eq!(e.min_rtt(), SimDuration::from_millis(10));
        // Flap: the path comes back at 50 ms base RTT.
        while t < 20.0 {
            e.on_sample(SimDuration::from_millis(50), at(t));
            t += 0.1;
        }
        assert_eq!(
            e.min_rtt(),
            SimDuration::from_millis(50),
            "stale pre-flap floor must expire with the window"
        );
        // And it stays correct if the path later improves again.
        e.on_sample(SimDuration::from_millis(20), at(t));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(20));
    }

    /// Within the window the min is exact, including across the
    /// staggered sub-window promotions.
    #[test]
    fn windowed_min_is_exact_within_window() {
        let mut e = RttEstimator::new();
        e.on_sample(SimDuration::from_millis(25), at(0.0));
        e.on_sample(SimDuration::from_millis(40), at(3.0));
        e.on_sample(SimDuration::from_millis(35), at(6.0));
        // 25 ms (t=0) still inside the 10 s window.
        assert_eq!(e.min_rtt(), SimDuration::from_millis(25));
        // t=11: the 25 ms estimate has aged out; best survivor is 35 ms.
        e.on_sample(SimDuration::from_millis(45), at(11.0));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(35));
    }
}
