//! Differential congestion-control properties: every [`CcAlgorithm`]
//! is driven through the same randomized ack/loss/RTT-sample schedules
//! and must uphold the shared controller contract:
//!
//! * the window never drops below the 2-MSS floor
//!   ([`MIN_CWND_SEGMENTS`]), no matter how hostile the schedule;
//! * pacing rates are always finite and positive — no NaN/inf ever
//!   reaches the fq pacer, including at zero/tiny smoothed RTTs;
//! * pure ack trains never shrink a loss-based controller's window,
//!   and never push a model-based (BBR) one below its initial window
//!   inside the min-RTT validity horizon;
//! * identical schedules produce bit-identical window trajectories
//!   (controllers are pure state machines — all randomness lives in
//!   the schedule generator's seed).
//!
//! The generator is hand-rolled on [`SimRng`] like `tests/properties.rs`:
//! every case derives from a fixed master seed, so failures reproduce.

use dtnperf::prelude::*;
use dtnperf::simcore::SimRng;
use dtnperf::tcpstack::cc::MIN_CWND_SEGMENTS;
use dtnperf::tcpstack::CongestionControl;

const CASES: u64 = 16;
const STEPS: usize = 400;
const MSS: u64 = 9000;

/// One step of a schedule, applied identically to every controller.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `acked` bytes, an optional RTT sample, whether cwnd-limited.
    Ack { acked: u64, rtt_us: Option<u64>, limited: bool },
    Loss,
    Rto,
}

/// Draw one schedule: a base RTT regime with queue flaps, burst-sized
/// acks, occasional losses and rare RTOs.
fn draw_schedule(master: u64, case: u64, with_losses: bool) -> Vec<Step> {
    let mut rng = SimRng::seed_from_u64(master ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let base_rtt_us = rng.uniform_u64(200, 250_000); // 0.2–250 ms
    let mut steps = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        if with_losses && rng.chance(0.005) {
            steps.push(Step::Rto);
            continue;
        }
        if with_losses && rng.chance(0.03) {
            steps.push(Step::Loss);
            continue;
        }
        let rtt_us = rng.chance(0.9).then(|| {
            // Queue flap: up to +50 % standing queue over the base.
            base_rtt_us + rng.uniform_u64(0, 1 + base_rtt_us / 2)
        });
        steps.push(Step::Ack {
            acked: MSS * rng.uniform_u64(1, 65),
            rtt_us,
            limited: rng.chance(0.8),
        });
    }
    steps
}

/// Apply a schedule, asserting the per-step invariants; returns the
/// full cwnd trajectory for determinism comparison.
fn apply(cc: &mut dyn CongestionControl, steps: &[Step], label: &str) -> Vec<u64> {
    let floor = MSS * MIN_CWND_SEGMENTS;
    let mut now = SimTime::ZERO;
    let mut traj = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        now += SimDuration::from_micros(100);
        match *step {
            Step::Ack { acked, rtt_us, limited } => {
                let rtt = rtt_us.map(SimDuration::from_micros);
                let w = cc.cwnd();
                cc.on_ack(Bytes::new(acked), rtt, now, w, limited);
            }
            Step::Loss => cc.on_loss(now),
            Step::Rto => cc.on_rto(now),
        }
        let w = cc.cwnd().as_u64();
        assert!(w >= floor, "{label} step {i}: cwnd {w} under the 2-MSS floor ({step:?})");
        // Pacing must be finite and positive at any plausible srtt,
        // including the zero-srtt startup corner.
        for srtt_us in [0, 1, 500, 100_000] {
            let bps = cc.pacing_rate(SimDuration::from_micros(srtt_us)).as_bps();
            assert!(
                bps.is_finite() && bps > 0.0,
                "{label} step {i}: pacing {bps} at srtt {srtt_us} µs"
            );
        }
        // ssthresh, when reported, is a real byte count (the u64::MAX
        // "infinite" sentinel must never leak through the Option).
        if let Some(t) = cc.ssthresh() {
            assert!(t.as_u64() < u64::MAX / 2, "{label} step {i}: sentinel ssthresh leaked");
        }
        traj.push(w);
    }
    traj
}

fn build_all() -> Vec<(CcAlgorithm, Box<dyn CongestionControl>)> {
    CcAlgorithm::ALL
        .iter()
        .map(|&alg| (alg, alg.build(Bytes::new(MSS), Bytes::new(MSS * 10))))
        .collect()
}

/// Floor, finite-pacing and ssthresh invariants under hostile
/// randomized schedules, for every controller.
#[test]
fn invariants_hold_under_randomized_loss_schedules() {
    for case in 0..CASES {
        let steps = draw_schedule(0xD1FF, case, true);
        for (alg, mut cc) in build_all() {
            apply(cc.as_mut(), &steps, &format!("{alg} case {case}"));
        }
    }
}

/// Identical schedules ⇒ bit-identical cwnd trajectories.
#[test]
fn trajectories_are_deterministic_across_reruns() {
    for case in 0..CASES / 2 {
        let steps = draw_schedule(0x5EED, case, true);
        for (alg, mut a) in build_all() {
            let mut b = alg.build(Bytes::new(MSS), Bytes::new(MSS * 10));
            let ta = apply(a.as_mut(), &steps, &format!("{alg} A"));
            let tb = apply(b.as_mut(), &steps, &format!("{alg} B"));
            assert_eq!(ta, tb, "{alg} case {case}: trajectories diverge");
        }
    }
}

/// Pure ack trains (no loss, no RTO, always cwnd-limited) must be
/// monotone for the loss-based controllers, and must never push a
/// BBR variant below its initial window within the min-RTT horizon
/// (the schedule stays under a simulated second — well inside both
/// versions' ProbeRTT cadence).
#[test]
fn pure_ack_trains_respond_monotonically()
{
    for case in 0..CASES {
        let steps = draw_schedule(0xACC5, case, false);
        for (alg, mut cc) in build_all() {
            let init = cc.cwnd().as_u64();
            let traj = apply(cc.as_mut(), &steps, &format!("{alg} case {case}"));
            match alg {
                CcAlgorithm::Cubic | CcAlgorithm::Htcp => {
                    for (i, pair) in traj.windows(2).enumerate() {
                        assert!(
                            pair[1] >= pair[0],
                            "{alg} case {case}: cwnd shrank {} -> {} at step {} on a pure ack train",
                            pair[0],
                            pair[1],
                            i + 1
                        );
                    }
                }
                CcAlgorithm::BbrV1 | CcAlgorithm::BbrV3 => {
                    for (i, &w) in traj.iter().enumerate() {
                        assert!(
                            w >= init,
                            "{alg} case {case}: cwnd {w} fell below init {init} at step {i}"
                        );
                    }
                }
            }
        }
    }
}

/// More acked bytes never yields a *smaller* final window for H-TCP:
/// feed the same clean schedule with every ack doubled and compare the
/// outcomes. (CUBIC is deliberately excluded — doubling ack volume
/// makes HyStart++'s CSS-exit condition `css_acked > 3 × entry_cwnd`
/// trip sooner, ending slow start at a *smaller* window; that is
/// correct RFC 9406 behaviour, not a bug, so ack volume is not
/// monotone for CUBIC.)
#[test]
fn doubled_ack_volume_never_shrinks_the_window() {
    for case in 0..CASES / 2 {
        let steps = draw_schedule(0xB16B, case, false);
        let doubled: Vec<Step> = steps
            .iter()
            .map(|s| match *s {
                Step::Ack { acked, rtt_us, limited } => {
                    Step::Ack { acked: acked * 2, rtt_us, limited }
                }
                other => other,
            })
            .collect();
        let alg = CcAlgorithm::Htcp;
        let mut a = alg.build(Bytes::new(MSS), Bytes::new(MSS * 10));
        let mut b = alg.build(Bytes::new(MSS), Bytes::new(MSS * 10));
        let wa = *apply(a.as_mut(), &steps, "base").last().unwrap();
        let wb = *apply(b.as_mut(), &doubled, "doubled").last().unwrap();
        assert!(
            wb >= wa,
            "{alg} case {case}: doubling acked bytes shrank cwnd {wa} -> {wb}"
        );
    }
}
