//! `netsim` — the discrete-event simulation that ties everything
//! together.
//!
//! A run wires two [`linuxhost::HostConfig`]s (sender, receiver) across
//! a [`nethw::PathSpec`] and pushes `num_flows` TCP flows through the
//! full pipeline, at GSO-burst granularity:
//!
//! ```text
//!  app core ──write/sendmsg──► fq pacer ──► TX softirq core ──► NIC
//!     ▲  (copy | zerocopy | fallback)                            │
//!     │                                                          ▼
//!  ACKs ◄── IRQ core ◄── one-way delay ◄── shared-buffer switch ─┤
//!                                          (tail drop / pause)   │
//!                                                                ▼
//!  rx app core ◄── RX softirq core (GRO) ◄── RX ring ◄── one-way delay
//!  (copy | MSG_TRUNC)        │
//!                            └─ overflow ⇒ receiver drop (no FC)
//! ```
//!
//! Every CPU stage is a FIFO server fed by the
//! [`linuxhost::CostModel`]; a per-host *fabric* server models shared
//! memory/DMA bandwidth. Throughput limits, retransmits, CPU
//! utilisation and run-to-run variance all emerge from the event loop —
//! there is no formula anywhere that "decides" the throughput.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod config;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod host;
pub mod result;
pub mod sim;
pub mod telemetry;
pub mod workload;

pub use attribution::{
    classify, Attribution, BottleneckVerdict, CoreProfile, IntervalObs, LimitingFactor,
    StageProfile,
};
pub use config::{SimConfig, WorkloadSpec};
pub use error::SimError;
pub use faults::{Fault, FaultEvent, FaultPlan};
pub use result::{FlowResult, RunResult};
pub use sim::{RunningSim, SimCheckpoint, Simulation};
pub use fleet::{FleetResult, FleetSim, FlowEvent, FlowFactor};
pub use telemetry::{CaState, FlowTrace, HostSample, HostTrace, TcpInfoSample, Telemetry};
pub use workload::{
    ArrivalProcess, ArrivalSampler, Diurnal, FleetClass, FleetProfile, FlowDraw, SizeDist,
};
