//! The repetition runner.
//!
//! The paper's methodology (§III-G): run every configuration for 60
//! seconds, at least 10 times, with `mpstat` sampling CPU alongside;
//! report mean, stdev, min and max. Repetitions only differ by seed
//! here, and are independent simulations — so a batch of scenarios
//! flattens into `(scenario, repetition)` jobs on the bounded
//! work-conserving pool in [`crate::sched`], with results landing in
//! deterministic slot order.
//!
//! Seeds are *derived*, not positional: repetition `i` of a scenario
//! runs on `derive_seed(scenario.fingerprint(), base_seed, i)`, so a
//! scenario's seeds depend only on what it is — never on where it sits
//! in a grid or which loop launched it. When a
//! [`RunCache`](crate::cache::RunCache) is attached, each repetition is
//! looked up by content address before simulating and stored after.
//!
//! Real campaigns lose repetitions (a host reboots, a watchdog fires):
//! a failed repetition is recorded per-seed and retried once with a
//! perturbed seed, survivors are aggregated, and the whole scenario
//! only errors out when *no* repetition produced a report.

use crate::cache::RunCache;
use crate::chaos::ChaosIo;
use crate::scenario::Scenario;
use crate::sched;
use crate::supervise::{
    json_escape, json_unescape, ErrorClass, RepError, RunLedger, ScenarioRecord, Supervisor,
};
use crate::trace::{RealIo, TraceIo};
use iperf3sim::Iperf3Report;
use simcore::{derive_seed, RunningStats, SimDuration, Summary};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Outcome slot for one repetition: the report (with the seed that
/// produced it — a rescued retry runs on a perturbed seed), or the
/// failure record.
type Slot = Result<(u64, Iperf3Report), FailedRep>;

/// One repetition that produced no report, identified by its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRep {
    /// The seed the repetition was asked to run with (retries perturb
    /// it, but the failure is recorded against the original).
    pub seed: u64,
    /// The *first* error, rendered as text (stable across retries).
    pub error: String,
    /// The first error's class — what the retry policy keyed on.
    pub class: ErrorClass,
    /// Attempts made before giving up (1 = never retried).
    pub attempts: u32,
}

impl FailedRep {
    /// Was this a deterministic flag/config rejection (the same on
    /// every seed, so never retried)?
    pub fn invalid(&self) -> bool {
        self.class == ErrorClass::InvalidConfig
    }

    /// Did the failure survive at least one retry?
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }

    /// Serialize for the degraded-run manifest.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"class\":\"{}\",\"attempts\":{},\"error\":\"{}\"}}",
            self.seed,
            self.class.name(),
            self.attempts,
            json_escape(&self.error)
        )
    }

    /// Parse exactly what [`FailedRep::to_json`] emits; `None` on any
    /// deviation (unknown class, malformed escape, missing field).
    pub fn from_json(s: &str) -> Option<FailedRep> {
        let s = s.strip_prefix("{\"seed\":")?;
        let (seed, s) = s.split_once(",\"class\":\"")?;
        let seed = seed.parse().ok()?;
        let (class, s) = s.split_once("\",\"attempts\":")?;
        let class = ErrorClass::parse(class)?;
        let (attempts, s) = s.split_once(",\"error\":\"")?;
        let attempts = attempts.parse().ok()?;
        let error = json_unescape(s.strip_suffix("\"}")?)?;
        Some(FailedRep { seed, error, class, attempts })
    }
}

/// Why a whole scenario produced no summary.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// The scenario's flags/config are invalid — deterministic, so no
    /// repetition was attempted beyond the first.
    Invalid {
        /// Scenario label.
        label: String,
        /// The individual validation messages.
        problems: Vec<String>,
    },
    /// Every repetition (including retries) failed at runtime.
    AllRepetitionsFailed {
        /// Scenario label.
        label: String,
        /// One record per failed seed.
        failures: Vec<FailedRep>,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Invalid { label, problems } => {
                write!(f, "scenario '{label}' invalid: {}", problems.join("; "))
            }
            ScenarioError::AllRepetitionsFailed { label, failures } => {
                write!(
                    f,
                    "scenario '{label}': all {} repetitions failed (first: {})",
                    failures.len(),
                    failures.first().map(|x| x.error.as_str()).unwrap_or("?")
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Aggregated results for one scenario across repetitions.
#[derive(Debug, Clone)]
pub struct TestSummary {
    /// Scenario label.
    pub label: String,
    /// Aggregate throughput (Gbps) across surviving repetitions.
    pub throughput_gbps: Summary,
    /// Total retransmitted packets per run.
    pub retr: Summary,
    /// Lowest single-stream rate seen in any repetition (Gbps).
    pub min_stream_gbps: f64,
    /// Highest single-stream rate seen in any repetition (Gbps).
    pub max_stream_gbps: f64,
    /// Sender combined CPU ("TX cores", %) across repetitions.
    pub sender_cpu_pct: Summary,
    /// Receiver combined CPU ("RX cores", %) across repetitions.
    pub receiver_cpu_pct: Summary,
    /// Zerocopy fallback fraction (mean across repetitions).
    pub zc_fallback: f64,
    /// The individual reports (one per surviving repetition).
    pub reports: Vec<Iperf3Report>,
    /// Repetitions that produced no report even after a retry.
    pub failed_reps: Vec<FailedRep>,
}

impl TestSummary {
    /// An all-zero summary for a scenario that produced no reports
    /// (experiments use this to degrade gracefully instead of tearing
    /// down a whole figure over one broken cell).
    pub fn empty(label: impl Into<String>) -> Self {
        TestSummary {
            label: label.into(),
            throughput_gbps: Summary::default(),
            retr: Summary::default(),
            min_stream_gbps: 0.0,
            max_stream_gbps: 0.0,
            sender_cpu_pct: Summary::default(),
            receiver_cpu_pct: Summary::default(),
            zc_fallback: 0.0,
            reports: Vec::new(),
            failed_reps: Vec::new(),
        }
    }

    /// Mean throughput in Gbps.
    pub fn mean_gbps(&self) -> f64 {
        self.throughput_gbps.mean
    }

    /// Mean retransmitted packets per run (what the paper's `Retr`
    /// column shows).
    pub fn mean_retr(&self) -> f64 {
        self.retr.mean
    }
}

/// The harness: repetition count and seeding policy.
#[derive(Debug, Clone)]
pub struct TestHarness {
    /// Number of repetitions per scenario.
    pub repetitions: usize,
    /// Base seed mixed into the derivation; repetition `i` of a
    /// scenario runs with
    /// `derive_seed(scenario.fingerprint(), base_seed, i)`.
    pub base_seed: u64,
    /// Run repetitions on parallel threads (bounded by the process-wide
    /// scheduler gate).
    pub parallel: bool,
    /// Write a JSON-lines telemetry trace plus simulated-`perf`
    /// profile files per surviving repetition into this directory (the
    /// `--trace <dir>` flag, threaded through
    /// [`RunCtx`](crate::ctx::RunCtx)). Forces telemetry sampling and
    /// bottleneck attribution on.
    pub trace_dir: Option<PathBuf>,
    /// Content-addressed report cache, consulted per repetition before
    /// simulating and filled after. Repetitions that carry observers
    /// (telemetry sampling or attribution, e.g. under tracing) bypass
    /// it.
    pub cache: Option<Arc<RunCache>>,
    /// Crash isolation, deadlines, classed retries, chaos schedule —
    /// every repetition runs under it (see [`crate::supervise`]).
    pub supervisor: Supervisor,
}

impl Default for TestHarness {
    fn default() -> Self {
        TestHarness {
            repetitions: 5,
            base_seed: 1000,
            parallel: true,
            trace_dir: None,
            cache: None,
            supervisor: Supervisor::default(),
        }
    }
}

/// Retried seeds flip the top bit of the derived seed, so a retry
/// never collides with another repetition's seed stream. (The second
/// retry onward re-derives from this mask, keeping every attempt's
/// seed distinct from every repetition stream.)
const RETRY_SEED_XOR: u64 = 0x8000_0000_0000_0000;

impl TestHarness {
    /// Harness with `repetitions` runs per scenario.
    pub fn new(repetitions: usize) -> Self {
        assert!(repetitions > 0, "need at least one repetition");
        TestHarness { repetitions, ..Default::default() }
    }

    /// Builder: set the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder: disable thread-level parallelism (deterministic
    /// ordering for debugging; results are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Builder: write per-repetition JSON-lines telemetry traces and
    /// simulated-`perf` profiles into `dir` (forces telemetry sampling
    /// and attribution on for every run).
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Builder: replace the run supervisor (retry policy, error
    /// budget, chaos schedule, checkpoint cadence).
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Run all repetitions of one scenario and aggregate the survivors.
    ///
    /// Invalid scenarios (flag/kernel mismatches) fail fast with
    /// [`ScenarioError::Invalid`]. Runtime failures (watchdog trips,
    /// conservation violations) cost one retry with a perturbed seed;
    /// seeds that fail twice are recorded in
    /// [`TestSummary::failed_reps`]. Only a scenario with *zero*
    /// surviving repetitions is an error.
    pub fn run(&self, scenario: &Scenario) -> Result<TestSummary, ScenarioError> {
        self.run_batch(std::slice::from_ref(scenario))
            .pop()
            .expect("one scenario yields one result")
    }

    /// Run a whole batch of scenarios: every `(scenario, repetition)`
    /// pair becomes one job on the bounded pool, so an entire figure
    /// grid saturates the scheduler gate instead of running scenarios
    /// one after another. Results return in scenario order and are
    /// bit-identical to sequential execution.
    pub fn run_batch(
        &self,
        scenarios: &[Scenario],
    ) -> Vec<Result<TestSummary, ScenarioError>> {
        let reps = self.repetitions;
        if let Some(hub) = self.supervisor.metrics() {
            hub.expect_reps((scenarios.len() * reps) as u64);
        }
        let fingerprints: Vec<u64> = scenarios.iter().map(Scenario::fingerprint).collect();
        let job = |j: usize| -> Slot {
            let (si, i) = (j / reps, j % reps);
            self.run_one_rep(&scenarios[si], derive_seed(fingerprints[si], self.base_seed, i as u64))
        };
        let slots: Vec<Option<Slot>> = if self.parallel {
            sched::run_batch(sched::global_gate(), scenarios.len() * reps, |j| Some(job(j)))
        } else {
            (0..scenarios.len() * reps).map(|j| Some(job(j))).collect()
        };
        slots
            .chunks(reps)
            .zip(scenarios)
            .zip(&fingerprints)
            .map(|((chunk, sc), &fp)| self.finish_scenario(sc, fp, chunk.to_vec()))
            .collect()
    }

    /// One repetition: attempt, then retries on perturbed seeds, each
    /// gated on the error class (a deterministic config rejection reads
    /// the same on every seed, so it is never rerun), the policy's
    /// attempt cap, and the shared error budget. The recorded failure
    /// keeps the *first* error — retries are rescue attempts, not
    /// evidence.
    fn run_one_rep(&self, scenario: &Scenario, seed: u64) -> Slot {
        let wall_start = std::time::Instant::now();
        let mut first: Option<RepError> = None;
        let mut attempt_no: u32 = 1;
        loop {
            let attempt_seed = match attempt_no {
                1 => seed,
                2 => seed ^ RETRY_SEED_XOR,
                n => derive_seed(seed, RETRY_SEED_XOR, n as u64),
            };
            match self.attempt(scenario, attempt_seed) {
                Ok((report, cached)) => {
                    if let Some(hub) = self.supervisor.metrics() {
                        hub.rep_finished(cached, false, wall_start.elapsed());
                    }
                    return Ok((attempt_seed, report));
                }
                Err(e) => {
                    let class = e.class;
                    let first = first.get_or_insert(e);
                    if self.supervisor.may_retry(class, attempt_no) {
                        std::thread::sleep(self.supervisor.policy().backoff(attempt_no + 1));
                        attempt_no += 1;
                    } else {
                        if let Some(hub) = self.supervisor.metrics() {
                            hub.rep_finished(false, true, wall_start.elapsed());
                        }
                        return Err(FailedRep {
                            seed,
                            error: first.error.clone(),
                            class: first.class,
                            attempts: attempt_no,
                        });
                    }
                }
            }
        }
    }

    /// Aggregate one scenario's repetition slots into a summary (or a
    /// scenario-level error), writing traces for the survivors.
    fn finish_scenario(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        slots: Vec<Option<Slot>>,
    ) -> Result<TestSummary, ScenarioError> {
        let expected = slots.len();
        let seeds: Vec<u64> = (0..slots.len())
            .map(|i| derive_seed(fingerprint, self.base_seed, i as u64))
            .collect();
        let (reports, failures) = Self::collect_slots(slots, &seeds);
        // Every scenario reports into the global ledger — success,
        // degraded, or total loss — so `repro` can account for every
        // repetition in the end-of-run manifest.
        RunLedger::global().record(ScenarioRecord {
            label: scenario.label.clone(),
            expected,
            completed: reports.len(),
            failed: failures.clone(),
        });
        if reports.is_empty() {
            // Deterministic config errors read the same on every seed:
            // report them as one Invalid, not N identical failures.
            if let Some(first) = failures.iter().find(|x| x.invalid()) {
                return Err(ScenarioError::Invalid {
                    label: scenario.label.clone(),
                    problems: vec![first.error.clone()],
                });
            }
            return Err(ScenarioError::AllRepetitionsFailed {
                label: scenario.label.clone(),
                failures,
            });
        }
        if let Some(dir) = &self.trace_dir {
            // Under chaos the writes go through the fault-injecting
            // shim: a lost trace degrades to a warning, never to a
            // lost repetition.
            let chaos_io = self.supervisor.chaos().map(|plan| ChaosIo::new(plan.clone()));
            let io: &dyn TraceIo = match &chaos_io {
                Some(io) => io,
                None => &RealIo,
            };
            for (i, seed, report) in &reports {
                if let Err(e) = crate::trace::write_rep_trace_with(
                    io,
                    dir,
                    &scenario.label,
                    *i,
                    *seed,
                    report,
                ) {
                    eprintln!(
                        "warning: could not write trace for '{}' rep {i}: {e}",
                        scenario.label
                    );
                }
                if let Err(e) =
                    crate::trace::write_rep_profiles_with(io, dir, &scenario.label, *i, report)
                {
                    eprintln!(
                        "warning: could not write profiles for '{}' rep {i}: {e}",
                        scenario.label
                    );
                }
            }
        }
        if let Some(hub) = self.supervisor.metrics() {
            // Per-survivor interval series (streamed through the HDR
            // aggregator) plus the iperf3 phase structure as sim-time
            // spans: omitted warmup first, measured steady interval
            // after. These land in the metrics dir, not the trace dir —
            // traces keep their exact per-rep file contract.
            let omit = scenario.opts.omit_secs as f64;
            let steady = scenario.opts.time_secs as f64;
            for (i, _seed, report) in &reports {
                let scope = format!("{}/rep{i}", scenario.label);
                if omit > 0.0 {
                    hub.span(scope.clone(), "warmup", "sim_s", 0.0, omit);
                }
                hub.span(scope, "steady", "sim_s", omit, steady);
                if let Err(e) = hub.write_interval_series(&scenario.label, *i, report) {
                    eprintln!(
                        "warning: could not write interval series for '{}' rep {i}: {e}",
                        scenario.label
                    );
                }
            }
        }
        let reports = reports.into_iter().map(|(_, _, r)| r).collect();
        Ok(Self::aggregate(&scenario.label, reports, failures))
    }

    /// Drain the repetition slots, converting an empty slot (a worker
    /// thread died before writing its result — a panic swallowed by a
    /// crashed thread, an OOM kill) into a recorded runtime failure so
    /// the scenario degrades instead of panicking the whole harness.
    /// `seeds[i]` is the seed repetition `i` would have run with.
    fn collect_slots(
        slots: Vec<Option<Slot>>,
        seeds: &[u64],
    ) -> (Vec<(usize, u64, Iperf3Report)>, Vec<FailedRep>) {
        let mut reports = Vec::new();
        let mut failures = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok((seed, report))) => reports.push((i, seed, report)),
                Some(Err(failure)) => failures.push(failure),
                None => failures.push(FailedRep {
                    seed: seeds[i],
                    error: format!("repetition {i}: worker died before reporting a result"),
                    class: ErrorClass::WorkerDeath,
                    attempts: 1,
                }),
            }
        }
        (reports, failures)
    }

    /// One supervised simulation attempt. The boolean is `true` when
    /// the report came straight from the cache (the heartbeat and the
    /// structured summary distinguish cached from simulated reps).
    fn attempt(&self, scenario: &Scenario, seed: u64) -> Result<(Iperf3Report, bool), RepError> {
        let mut opts = scenario.opts.clone().seed(seed);
        // Tracing needs samples: default to a 1 s tick unless the
        // scenario already chose one, and turn on attribution so the
        // trace carries verdicts and the profile files have cycles.
        if self.trace_dir.is_some() {
            if opts.telemetry.is_none() {
                opts = opts.telemetry(SimDuration::from_secs(1));
            }
            opts = opts.attribution();
        }
        // The simulation itself always runs under the supervisor:
        // crash-isolated, stepped under a wall-clock deadline, and —
        // when chaos is on — killed and resumed per the schedule.
        let simulate = || {
            self.supervisor.drive(seed, || {
                iperf3sim::start_session(
                    &scenario.client,
                    &scenario.server,
                    &scenario.path,
                    &opts,
                    &scenario.faults,
                    scenario.event_budget,
                )
            })
        };
        // Observer-free runs are pure functions of (scenario, seed):
        // consult the content-addressed cache before simulating, fill
        // it after. Runs carrying telemetry/attribution bypass it (the
        // cached payload deliberately excludes observer data).
        let cacheable = opts.telemetry.is_none() && !opts.attribution;
        if cacheable {
            if let Some(cache) = &self.cache {
                let key = cache.key(scenario, seed);
                let lookup_start = self.supervisor.metrics().map(|hub| hub.wall_now());
                let looked_up = cache.lookup_detail(&key);
                if let (Some(hub), Some(start)) = (self.supervisor.metrics(), lookup_start) {
                    hub.span(
                        format!("{}/seed_{seed:016x}", scenario.label),
                        "cache_lookup",
                        "wall_s",
                        start,
                        hub.wall_now() - start,
                    );
                }
                let clean_miss = match looked_up {
                    Ok(Some(report)) => return Ok((report, true)),
                    Ok(None) => true,
                    // Corrupt/truncated/stale entry: already counted
                    // and logged by the cache — recompute and overwrite
                    // (self-heal).
                    Err(_fault) => false,
                };
                let report = simulate()?;
                cache.store(&key, &report);
                // Chaos poisons only entries stored after a clean
                // miss: a store that just healed a poisoned entry is
                // left alone, so the cache converges instead of
                // being re-corrupted forever.
                if clean_miss {
                    if let Some(chaos) = self.supervisor.chaos() {
                        if let Some(damage) = chaos.cache_damage(seed) {
                            chaos.damage_entry(&cache.entry_path(&key), damage);
                        }
                    }
                }
                return Ok((report, false));
            }
        }
        simulate().map(|report| (report, false))
    }

    fn aggregate(
        label: &str,
        reports: Vec<Iperf3Report>,
        failed_reps: Vec<FailedRep>,
    ) -> TestSummary {
        let mut tput = RunningStats::new();
        let mut retr = RunningStats::new();
        let mut snd_cpu = RunningStats::new();
        let mut rcv_cpu = RunningStats::new();
        let mut min_stream = f64::INFINITY;
        let mut max_stream = f64::NEG_INFINITY;
        let mut zc_fallback = 0.0;
        for r in &reports {
            tput.push(r.sum_bitrate().as_gbps());
            retr.push(r.sum_retr() as f64);
            snd_cpu.push(r.sender_cpu.combined_pct());
            rcv_cpu.push(r.receiver_cpu.combined_pct());
            min_stream = min_stream.min(r.min_stream_gbps());
            max_stream = max_stream.max(r.max_stream_gbps());
            zc_fallback += r.zc_fallback_fraction;
        }
        // An empty (or all-empty-stream) report set must read as zero,
        // never as ±inf leaking out of the fold identities.
        if !min_stream.is_finite() {
            min_stream = 0.0;
        }
        if !max_stream.is_finite() {
            max_stream = 0.0;
        }
        let n = reports.len().max(1) as f64;
        TestSummary {
            label: label.to_string(),
            throughput_gbps: tput.summary(),
            retr: retr.summary(),
            min_stream_gbps: min_stream,
            max_stream_gbps: max_stream,
            sender_cpu_pct: snd_cpu.summary(),
            receiver_cpu_pct: rcv_cpu.summary(),
            zc_fallback: zc_fallback / n,
            reports,
            failed_reps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use iperf3sim::Iperf3Opts;
    use linuxhost::KernelVersion;
    use netsim::FaultPlan;
    use simcore::SimDuration;

    fn scenario() -> Scenario {
        Scenario::symmetric(
            "default",
            Testbeds::esnet_host(KernelVersion::L6_8),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(2).omit(0),
        )
    }

    #[test]
    fn aggregates_across_repetitions() {
        let h = TestHarness::new(3);
        let s = h.run(&scenario()).expect("run");
        assert_eq!(s.throughput_gbps.n, 3);
        assert_eq!(s.reports.len(), 3);
        assert!(s.failed_reps.is_empty());
        assert!(s.mean_gbps() > 20.0, "AMD LAN default ≈ 42, got {}", s.mean_gbps());
        assert!(s.throughput_gbps.min <= s.throughput_gbps.mean);
        assert!(s.throughput_gbps.mean <= s.throughput_gbps.max);
        assert!(s.receiver_cpu_pct.mean > 50.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sc = scenario();
        let par = TestHarness::new(2).run(&sc).expect("parallel");
        let seq = TestHarness::new(2).sequential().run(&sc).expect("sequential");
        assert_eq!(par.throughput_gbps.mean, seq.throughput_gbps.mean);
        assert_eq!(par.retr.mean, seq.retr.mean);
    }

    #[test]
    fn seeds_differ_across_repetitions() {
        let s = TestHarness::new(3).run(&scenario()).expect("run");
        // Distinct seeds ⇒ stdev strictly positive (service jitter).
        assert!(s.throughput_gbps.stdev > 0.0);
    }

    #[test]
    fn invalid_scenario_fails_fast() {
        let mut sc = scenario();
        sc.opts.parallel = 0;
        let err = TestHarness::new(3).run(&sc).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
        assert!(err.to_string().contains("default"));
    }

    #[test]
    fn watchdog_failures_recorded_per_seed() {
        // An absurdly small event budget trips the watchdog on every
        // seed (and every retry): the scenario must surface
        // AllRepetitionsFailed with one record per seed.
        let sc = scenario().with_faults(FaultPlan::none()).with_event_budget(10);
        let err = TestHarness::new(2).with_base_seed(7).run(&sc).unwrap_err();
        let rep0_seed = simcore::derive_seed(sc.fingerprint(), 7, 0);
        match err {
            ScenarioError::AllRepetitionsFailed { failures, .. } => {
                assert_eq!(failures.len(), 2);
                assert!(failures.iter().all(|f| f.retried()));
                assert!(failures.iter().all(|f| f.class == ErrorClass::WatchdogBudget));
                assert!(failures.iter().any(|f| f.seed == rep0_seed));
                assert!(failures[0].error.contains("stalled"), "{}", failures[0].error);
            }
            other => panic!("expected AllRepetitionsFailed, got {other}"),
        }
    }

    #[test]
    fn missing_slot_recorded_as_failed_rep() {
        // A worker thread that dies before writing its slot must not
        // panic the harness: the empty slot reads as a runtime failure
        // so the usual degradation path (aggregate the survivors, or
        // AllRepetitionsFailed) applies.
        let (reports, failures) = TestHarness::collect_slots(vec![None, None], &[50, 51]);
        assert!(reports.is_empty());
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].seed, 50);
        assert_eq!(failures[1].seed, 51);
        assert!(failures.iter().all(|f| !f.retried() && !f.invalid()));
        assert!(failures.iter().all(|f| f.class == ErrorClass::WorkerDeath));
        assert!(failures[0].error.contains("worker died"), "{}", failures[0].error);
    }

    #[test]
    fn invalid_scenario_never_retries() {
        // A deterministic config rejection must burn exactly one
        // attempt per repetition — the identical rerun the old harness
        // paid for is gone. Verified through the run ledger (filtered
        // by label: the ledger is process-global and tests run in
        // parallel).
        let mut sc = scenario();
        sc.label = "invalid_never_retries".into();
        sc.opts.parallel = 0;
        let err = TestHarness::new(2).run(&sc).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
        let records = RunLedger::global().snapshot();
        let rec = records
            .iter()
            .rev()
            .find(|r| r.label == "invalid_never_retries")
            .expect("scenario recorded in ledger");
        assert_eq!((rec.expected, rec.completed), (2, 0));
        assert_eq!(rec.failed.len(), 2);
        assert!(rec
            .failed
            .iter()
            .all(|f| f.attempts == 1 && f.class == ErrorClass::InvalidConfig));
    }

    #[test]
    fn failed_rep_json_round_trips() {
        let f = FailedRep {
            seed: u64::MAX,
            error: "weird \"msg\"\nwith\\slashes\tand tabs".into(),
            class: ErrorClass::StateCorruption,
            attempts: 3,
        };
        assert_eq!(FailedRep::from_json(&f.to_json()), Some(f));
        assert_eq!(FailedRep::from_json("{\"seed\":1}"), None);
        assert_eq!(
            FailedRep::from_json(
                "{\"seed\":1,\"class\":\"no-such\",\"attempts\":1,\"error\":\"x\"}"
            ),
            None
        );
    }

    #[test]
    fn traces_written_when_trace_dir_set() {
        let dir = std::env::temp_dir().join(format!("repro_trace_{}", std::process::id()));
        let s = TestHarness::new(2).with_trace_dir(&dir).run(&scenario()).expect("run");
        assert_eq!(s.reports.len(), 2);
        // Tracing forces telemetry sampling and attribution on.
        assert!(s.reports.iter().all(|r| r.telemetry.is_some()));
        assert!(s.reports.iter().all(|r| r.attribution.is_some()));
        let mut files: Vec<String> = std::fs::read_dir(&dir)
            .expect("trace dir created")
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        assert_eq!(
            files,
            vec![
                "default_rep0.folded",
                "default_rep0.jsonl",
                "default_rep0.perf.txt",
                "default_rep1.folded",
                "default_rep1.jsonl",
                "default_rep1.perf.txt",
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregate_of_empty_streams_is_zero_not_infinite() {
        let s = TestHarness::aggregate("empty", Vec::new(), Vec::new());
        assert_eq!(s.min_stream_gbps, 0.0);
        assert_eq!(s.max_stream_gbps, 0.0);
        assert_eq!(s.zc_fallback, 0.0);
        assert_eq!(s.throughput_gbps.n, 0);
    }

    #[test]
    fn fault_plan_rides_along() {
        let plan = FaultPlan::none().with_link_flap(
            SimDuration::from_millis(500),
            SimDuration::from_millis(30),
        );
        let sc = scenario().with_faults(plan);
        let s = TestHarness::new(1).run(&sc).expect("faulted run");
        assert!(s.mean_gbps() > 1.0);
        // The flap costs throughput relative to a clean run.
        let clean = TestHarness::new(1).run(&scenario()).expect("clean run");
        assert!(s.mean_gbps() < clean.mean_gbps());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let _ = TestHarness::new(0);
    }
}
