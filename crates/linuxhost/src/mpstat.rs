//! Per-core CPU accounting, reported like `mpstat`.
//!
//! The paper's harness runs `mpstat` alongside iperf3 and aggregates
//! "TX/RX Cores": the utilisation of the cores used by the benchmark
//! tool plus those handling NIC interrupts — a value that can exceed
//! 100 % (Figs. 7–9).

use simcore::{SimDuration, SimTime};
use std::fmt;

/// The role a core plays during a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreGroup {
    /// Runs the benchmark application (iperf3 thread).
    App,
    /// Handles NIC interrupts / softirq.
    Irq,
    /// Shared between app and IRQ work (bad affinity).
    Shared,
}

/// Busy-time accounting over a set of cores.
#[derive(Debug, Clone)]
pub struct CpuAccounting {
    groups: Vec<CoreGroup>,
    busy: Vec<SimDuration>,
}

impl CpuAccounting {
    /// New accounting: one entry per core with its group label.
    pub fn new(groups: Vec<CoreGroup>) -> Self {
        let n = groups.len();
        CpuAccounting { groups, busy: vec![SimDuration::ZERO; n] }
    }

    /// Record `dur` of busy time on core `idx`.
    pub fn add_busy(&mut self, idx: usize, dur: SimDuration) {
        self.busy[idx] += dur;
    }

    /// Number of cores tracked.
    pub fn num_cores(&self) -> usize {
        self.groups.len()
    }

    /// Total busy time on one core.
    pub fn busy(&self, idx: usize) -> SimDuration {
        self.busy[idx]
    }

    /// Produce a report over the elapsed window `[start, end)`.
    pub fn report(&self, start: SimTime, end: SimTime) -> CpuReport {
        let elapsed = end.saturating_since(start);
        let util = |idx: usize| {
            if elapsed.is_zero() {
                0.0
            } else {
                100.0 * self.busy[idx].as_secs_f64() / elapsed.as_secs_f64()
            }
        };
        let mut app_pct = 0.0;
        let mut irq_pct = 0.0;
        let mut per_core = Vec::with_capacity(self.groups.len());
        let mut peak = 0.0f64;
        for (idx, group) in self.groups.iter().enumerate() {
            let u = util(idx);
            per_core.push(u);
            peak = peak.max(u);
            match group {
                CoreGroup::App => app_pct += u,
                CoreGroup::Irq => irq_pct += u,
                CoreGroup::Shared => {
                    // Attribute half to each for group totals.
                    app_pct += u / 2.0;
                    irq_pct += u / 2.0;
                }
            }
        }
        CpuReport { per_core, app_pct, irq_pct, peak_core_pct: peak }
    }
}

/// An `mpstat`-style utilisation report.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuReport {
    /// Utilisation (%) of every tracked core.
    pub per_core: Vec<f64>,
    /// Sum of application-core utilisations (%).
    pub app_pct: f64,
    /// Sum of IRQ-core utilisations (%).
    pub irq_pct: f64,
    /// Busiest single core (%): ≈100 means that side is the bottleneck.
    pub peak_core_pct: f64,
}

impl CpuReport {
    /// The paper's "TX/RX Cores" metric: app + IRQ cores together
    /// (may exceed 100 %).
    pub fn combined_pct(&self) -> f64 {
        self.app_pct + self.irq_pct
    }

    /// Whether some core is effectively saturated.
    pub fn is_saturated(&self) -> bool {
        self.peak_core_pct >= 97.0
    }

    /// An all-zero report (e.g. zero-length window).
    pub fn zero(num_cores: usize) -> Self {
        CpuReport {
            per_core: vec![0.0; num_cores],
            app_pct: 0.0,
            irq_pct: 0.0,
            peak_core_pct: 0.0,
        }
    }
}

impl fmt::Display for CpuReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "app={:.0}% irq={:.0}% combined={:.0}% peak={:.0}%",
            self.app_pct,
            self.irq_pct,
            self.combined_pct(),
            self.peak_core_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_math() {
        let mut acct = CpuAccounting::new(vec![CoreGroup::App, CoreGroup::Irq]);
        acct.add_busy(0, SimDuration::from_millis(500));
        acct.add_busy(1, SimDuration::from_millis(250));
        let r = acct.report(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!((r.per_core[0] - 50.0).abs() < 1e-9);
        assert!((r.per_core[1] - 25.0).abs() < 1e-9);
        assert!((r.app_pct - 50.0).abs() < 1e-9);
        assert!((r.irq_pct - 25.0).abs() < 1e-9);
        assert!((r.combined_pct() - 75.0).abs() < 1e-9);
        assert!((r.peak_core_pct - 50.0).abs() < 1e-9);
        assert!(!r.is_saturated());
    }

    #[test]
    fn combined_can_exceed_100() {
        let mut acct = CpuAccounting::new(vec![CoreGroup::App, CoreGroup::Irq]);
        acct.add_busy(0, SimDuration::from_millis(990));
        acct.add_busy(1, SimDuration::from_millis(800));
        let r = acct.report(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!(r.combined_pct() > 150.0);
        assert!(r.is_saturated());
    }

    #[test]
    fn shared_cores_split_between_groups() {
        let mut acct = CpuAccounting::new(vec![CoreGroup::Shared]);
        acct.add_busy(0, SimDuration::from_millis(600));
        let r = acct.report(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!((r.app_pct - 30.0).abs() < 1e-9);
        assert!((r.irq_pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_safe() {
        let acct = CpuAccounting::new(vec![CoreGroup::App]);
        let r = acct.report(SimTime::ZERO, SimTime::ZERO);
        assert_eq!(r.app_pct, 0.0);
        let z = CpuReport::zero(3);
        assert_eq!(z.per_core.len(), 3);
    }

    #[test]
    fn accumulation_over_multiple_adds() {
        let mut acct = CpuAccounting::new(vec![CoreGroup::App]);
        for _ in 0..10 {
            acct.add_busy(0, SimDuration::from_millis(10));
        }
        assert_eq!(acct.busy(0), SimDuration::from_millis(100));
    }
}
