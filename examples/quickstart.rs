//! Quickstart: run one simulated iperf3 test and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the simulation equivalent of logging into an ESnet testbed
//! host and running:
//!
//! ```text
//! iperf3 -c receiver -t 10 --zerocopy=z --fq-rate 40G -J
//! ```

use dtnperf::prelude::*;

fn main() {
    // Two ESnet testbed hosts: dual AMD EPYC 73F3, ConnectX-7 (200 GbE),
    // kernel 6.8, fasterdata-tuned sysctls, pinned IRQs (paper SIII).
    let host = Testbeds::esnet_host(KernelVersion::L6_8);

    // The testbed WAN loop (63 ms RTT, no flow control, no cross traffic).
    let path = Testbeds::esnet_path(EsnetPath::Wan);

    // iperf3 flags: 10 s, 2 s omitted, MSG_ZEROCOPY, paced at 40 Gbps.
    let opts = Iperf3Opts::new(10)
        .omit(2)
        .zerocopy()
        .fq_rate(BitRate::gbps(40.0));

    println!("simulating: {}", opts.command_line("esnet-dtn2"));
    println!("path: {} (RTT {})\n", path.name, path.rtt);

    let report = iperf3_run(&host, &host, &path, &opts).expect("valid configuration");

    // Human-readable iperf3-style output...
    println!("{report}");
    // ...and the JSON the paper's harness would parse.
    println!("{}", report.to_json());

    // The paper's headline for this setup (Fig. 6): zerocopy+pacing
    // holds the paced rate across the WAN, where default settings only
    // reach ~22 Gbps.
    let default_report = iperf3_run(&host, &host, &path, &Iperf3Opts::new(10).omit(2))
        .expect("valid configuration");
    println!(
        "zerocopy+pacing: {:.1} Gbps vs default: {:.1} Gbps  (+{:.0}%)",
        report.sum_bitrate().as_gbps(),
        default_report.sum_bitrate().as_gbps(),
        (report.sum_bitrate().as_gbps() / default_report.sum_bitrate().as_gbps() - 1.0) * 100.0
    );
}
