//! A minimal timing harness for the `harness = false` bench targets.
//!
//! Mirrors the familiar bench output shape — warm-up, N timed
//! iterations, `name  time: [min mean max]` lines — without any
//! external dependency. Wall-clock only; good enough to catch the
//! order-of-magnitude regressions these targets exist for.

use std::time::{Duration, Instant};

/// Timing for one bench target.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Target name.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl BenchReport {
    /// The standard one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{:<32} time: [{} {} {}]  ({} iters)",
            self.name,
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.max),
            self.iters
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A group of bench targets sharing warm-up/iteration settings.
pub struct BenchGroup {
    name: &'static str,
    warmup: u32,
    iters: u32,
    reports: Vec<BenchReport>,
}

impl BenchGroup {
    /// New group: `warmup` untimed iterations, then `iters` timed ones
    /// per target.
    pub fn new(name: &'static str, warmup: u32, iters: u32) -> Self {
        assert!(iters > 0, "need at least one timed iteration");
        println!("group {name}: {warmup} warm-up + {iters} timed iterations per target");
        BenchGroup { name, warmup, iters, reports: Vec::new() }
    }

    /// Run one target. The closure's return value is consumed through
    /// a volatile-ish sink (`std::hint::black_box`) so the work cannot
    /// be optimised away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchReport {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let report = BenchReport {
            name: format!("{}/{name}", self.name),
            iters: self.iters,
            min,
            mean: total / self.iters,
            max,
        };
        println!("{}", report.render());
        self.reports.push(report);
        self.reports.last().expect("just pushed")
    }

    /// All reports so far.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_loop_runs_warmup_plus_iters() {
        let mut calls = 0u32;
        let mut g = BenchGroup::new("t", 2, 3);
        g.bench("count", || calls += 1);
        assert_eq!(calls, 5);
        let r = &g.reports()[0];
        assert_eq!(r.iters, 3);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.name.contains("t/count"));
    }

    #[test]
    fn durations_render_with_sane_units() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
