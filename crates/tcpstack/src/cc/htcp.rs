//! H-TCP congestion control (Leith & Shorten, "H-TCP: TCP for
//! high-speed and long-distance networks", PFLDnet 2004; Linux
//! `net/ipv4/tcp_htcp.c`).
//!
//! H-TCP keeps standard AIMD structure but makes both knobs adaptive:
//!
//! * **Additive increase** grows with the time Δ since the last
//!   congestion event — `α(Δ) = 1 + 10(Δ−Δ_L) + ((Δ−Δ_L)/2)²` MSS per
//!   RTT once Δ exceeds the low-speed regime `Δ_L` (1 s), optionally
//!   scaled by RTT so flows with different RTTs take bandwidth at
//!   comparable per-second rates (the `use_rtt_scaling` mode in Linux,
//!   on by default here because the high-BDP study's orderings assume
//!   it).
//! * **Multiplicative backoff** adapts to the queue: `β =
//!   RTTmin/RTTmax` measured since the last backoff, clamped to
//!   [0.5, 0.8] — on a near-empty queue (RTTmax ≈ RTTmin) H-TCP gives
//!   back only 20 %, where CUBIC always cuts to 70 %.
//!
//! Together these are why H-TCP out-ramps CUBIC on long-RTT lossy
//! paths (arXiv:1610.03534 ranks it above CUBIC at 200 ms RTT under
//! loss), which `tests/cc_matrix_golden.rs` pins as a golden ordering.

use super::{window_rate, CongestionControl};
use crate::cc::cubic::{CA_PACING_RATIO, SS_PACING_RATIO};
use simcore::{BitRate, Bytes, SimDuration, SimTime};

/// Low-speed regime: below this time since the last backoff, H-TCP
/// behaves like Reno (α = 1 MSS/RTT).
pub const DELTA_L: SimDuration = SimDuration::from_secs(1);
/// Adaptive-backoff floor (Linux `BETA_MIN` = 0.5).
pub const BETA_MIN: f64 = 0.5;
/// Adaptive-backoff cap (Linux `BETA_MAX` = 0.8).
pub const BETA_MAX: f64 = 0.8;
/// Reference RTT for RTT scaling (Linux scales α by minRTT/100 ms).
const RTT_SCALE_REF: f64 = 0.100;
/// RTT-scaling clamp (Linux clamps the factor to [0.1, 2.0]).
const RTT_SCALE_MIN: f64 = 0.1;
/// Upper clamp of the RTT-scaling factor.
const RTT_SCALE_MAX: f64 = 2.0;

/// H-TCP state.
#[derive(Debug, Clone)]
pub struct Htcp {
    mss: Bytes,
    min_cwnd: Bytes,
    cwnd: Bytes,
    ssthresh: Bytes,
    exited_slow_start: bool,
    /// Time of the last backoff; `None` until the first loss (Δ is
    /// then measured from connection start, keeping α small early).
    last_backoff: Option<SimTime>,
    /// Connection-lifetime propagation floor.
    min_rtt: Option<SimDuration>,
    /// Largest RTT seen since the last backoff (the queue signal β
    /// adapts to; reset each backoff like Linux's `maxRTT`).
    max_rtt: Option<SimDuration>,
    /// Current adaptive backoff factor.
    beta: f64,
}

impl Htcp {
    /// New H-TCP flow.
    pub fn new(mss: Bytes, init_cwnd: Bytes) -> Self {
        assert!(mss.as_u64() > 0, "MSS must be positive");
        Htcp {
            mss,
            min_cwnd: mss * super::MIN_CWND_SEGMENTS,
            cwnd: init_cwnd.max(mss * super::MIN_CWND_SEGMENTS),
            ssthresh: Bytes::new(u64::MAX),
            exited_slow_start: false,
            last_backoff: None,
            min_rtt: None,
            max_rtt: None,
            beta: BETA_MIN,
        }
    }

    /// Seconds since the last backoff (time 0 before the first one).
    fn delta(&self, now: SimTime) -> f64 {
        let since = self.last_backoff.unwrap_or(SimTime::ZERO);
        now.saturating_since(since).as_secs_f64()
    }

    /// α(Δ) in MSS per RTT: Reno inside the low-speed regime, then the
    /// Leith/Shorten quadratic, RTT-scaled and coupled to β so that
    /// gentler backoffs also probe more gently (Linux computes
    /// `alpha = 2·factor·(1−β)`).
    fn alpha(&self, now: SimTime) -> f64 {
        let d = self.delta(now) - DELTA_L.as_secs_f64();
        let base = if d <= 0.0 { 1.0 } else { 1.0 + 10.0 * d + (d / 2.0) * (d / 2.0) };
        let scale = match self.min_rtt {
            Some(m) => (m.as_secs_f64() / RTT_SCALE_REF).clamp(RTT_SCALE_MIN, RTT_SCALE_MAX),
            None => 1.0,
        };
        (2.0 * base * scale * (1.0 - self.beta)).max(1.0)
    }

    /// Current adaptive backoff factor (for tests/telemetry).
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl CongestionControl for Htcp {
    fn on_ack(
        &mut self,
        acked: Bytes,
        rtt: Option<SimDuration>,
        now: SimTime,
        _inflight: Bytes,
        cwnd_limited: bool,
    ) {
        if let Some(r) = rtt {
            self.min_rtt = Some(self.min_rtt.map_or(r, |m| m.min(r)));
            self.max_rtt = Some(self.max_rtt.map_or(r, |m| m.max(r)));
        }
        if !cwnd_limited {
            // Not using the window: growing it would only bank a burst.
            return;
        }
        if self.in_slow_start() {
            self.cwnd += acked;
            if self.cwnd >= self.ssthresh {
                self.exited_slow_start = true;
            }
            return;
        }
        // Congestion avoidance: α(Δ) MSS per RTT, apportioned per ACK
        // by the fraction of the window this ACK covered.
        let alpha = self.alpha(now);
        let inc = alpha * self.mss.as_f64() * (acked.as_f64() / self.cwnd.as_f64().max(1.0));
        self.cwnd = Bytes::new((self.cwnd.as_f64() + inc) as u64);
    }

    fn on_loss(&mut self, now: SimTime) {
        // Adaptive backoff: β = RTTmin/RTTmax since the last backoff.
        // An empty queue (ratio near 1) gives back little; a full one
        // falls back to the Reno-style half.
        self.beta = match (self.min_rtt, self.max_rtt) {
            (Some(min), Some(max)) if !max.is_zero() => {
                (min.as_secs_f64() / max.as_secs_f64()).clamp(BETA_MIN, BETA_MAX)
            }
            _ => BETA_MIN,
        };
        let new = Bytes::new((self.cwnd.as_f64() * self.beta) as u64).max(self.min_cwnd);
        self.cwnd = new;
        self.ssthresh = new;
        self.exited_slow_start = true;
        self.last_backoff = Some(now);
        self.max_rtt = None;
    }

    fn on_rto(&mut self, now: SimTime) {
        self.ssthresh =
            Bytes::new((self.cwnd.as_f64() / 2.0) as u64).max(self.min_cwnd * 2);
        self.cwnd = self.min_cwnd.max(Bytes::new(self.mss.as_u64() * 2));
        self.exited_slow_start = false;
        self.last_backoff = Some(now);
        self.max_rtt = None;
        self.beta = BETA_MIN;
    }

    fn cwnd(&self) -> Bytes {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<Bytes> {
        (self.ssthresh.as_u64() != u64::MAX).then_some(self.ssthresh)
    }

    fn in_slow_start(&self) -> bool {
        !self.exited_slow_start && self.cwnd < self.ssthresh
    }

    fn pacing_rate(&self, srtt: SimDuration) -> BitRate {
        let ratio = if self.in_slow_start() { SS_PACING_RATIO } else { CA_PACING_RATIO };
        window_rate(self.cwnd, srtt, ratio)
    }

    fn name(&self) -> &'static str {
        "htcp"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mss() -> Bytes {
        Bytes::new(9000)
    }

    fn htcp() -> Htcp {
        Htcp::new(mss(), Bytes::new(9000 * 10))
    }

    /// Ack one full window per RTT for `rounds` rounds from `start`.
    fn clock(h: &mut Htcp, rtt: SimDuration, start: SimTime, rounds: usize) -> SimTime {
        let mut now = start;
        for _ in 0..rounds {
            now += rtt;
            let w = h.cwnd();
            h.on_ack(w, Some(rtt), now, w, true);
        }
        now
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut h = htcp();
        let start = h.cwnd();
        h.on_ack(start, Some(SimDuration::from_millis(10)), SimTime::ZERO, start, true);
        assert_eq!(h.cwnd(), start + start);
        assert!(h.in_slow_start());
    }

    #[test]
    fn low_speed_regime_is_reno() {
        let mut h = htcp();
        h.on_loss(SimTime::ZERO);
        // Within Δ_L of the backoff, α must stay small (Reno-like):
        // one RTT's worth of acks adds ≈ α ≤ 2 MSS.
        let before = h.cwnd();
        let rtt = SimDuration::from_millis(100);
        h.on_ack(before, Some(rtt), SimTime::ZERO + rtt, before, true);
        let grown = h.cwnd().as_f64() - before.as_f64();
        assert!(
            grown <= 2.5 * mss().as_f64(),
            "low-speed α must be Reno-like, grew {:.1} MSS",
            grown / mss().as_f64()
        );
    }

    #[test]
    fn alpha_accelerates_with_time_since_backoff() {
        let mut h = htcp();
        h.on_loss(SimTime::ZERO);
        let rtt = SimDuration::from_millis(100);
        // After 10 s the quadratic term dominates: one round must add
        // far more than Reno's single MSS.
        let far = SimTime::ZERO + SimDuration::from_secs(10);
        let before = h.cwnd();
        h.on_ack(before, Some(rtt), far, before, true);
        let grown = (h.cwnd().as_f64() - before.as_f64()) / mss().as_f64();
        assert!(grown > 50.0, "α(10 s) should exceed 50 MSS/RTT, got {grown:.1}");
    }

    #[test]
    fn backoff_adapts_to_queue_depth() {
        // Shallow queue (RTT barely rises): β → RTTmin/RTTmax ≈ 0.8.
        let mut h = htcp();
        let base = SimDuration::from_millis(100);
        let bloated = SimDuration::from_millis(110);
        let w = h.cwnd();
        h.on_ack(w, Some(base), SimTime::ZERO, w, true);
        h.on_ack(w, Some(bloated), SimTime::ZERO + base, w, true);
        let before = h.cwnd();
        h.on_loss(SimTime::ZERO + base * 2);
        let ratio = h.cwnd().as_f64() / before.as_f64();
        assert!((h.beta() - BETA_MAX).abs() < 1e-9, "near-empty queue clamps β at 0.8");
        assert!((ratio - BETA_MAX).abs() < 0.01, "cut by β, got {ratio:.2}");

        // Deep queue (RTT tripled): β clamps at the 0.5 floor.
        let mut h2 = htcp();
        h2.on_ack(w, Some(base), SimTime::ZERO, w, true);
        h2.on_ack(w, Some(base * 3), SimTime::ZERO + base, w, true);
        h2.on_loss(SimTime::ZERO + base * 2);
        assert!((h2.beta() - BETA_MIN).abs() < 1e-9, "bloated queue floors β at 0.5");
    }

    #[test]
    fn max_rtt_resets_each_backoff() {
        let mut h = htcp();
        let base = SimDuration::from_millis(50);
        let w = h.cwnd();
        h.on_ack(w, Some(base), SimTime::ZERO, w, true);
        h.on_ack(w, Some(base * 4), SimTime::ZERO + base, w, true);
        h.on_loss(SimTime::ZERO + base * 2);
        assert!((h.beta() - BETA_MIN).abs() < 1e-9);
        // After the backoff only clean samples arrive: the stale
        // maxRTT must not keep β pinned at the floor.
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        h.on_ack(h.cwnd(), Some(base), t, h.cwnd(), true);
        h.on_loss(t + base);
        assert!((h.beta() - BETA_MAX).abs() < 1e-9, "β re-adapts after the queue drains");
    }

    #[test]
    fn rto_collapses_to_slow_start() {
        let mut h = htcp();
        let _ = clock(&mut h, SimDuration::from_millis(10), SimTime::ZERO, 10);
        let before = h.cwnd();
        h.on_rto(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(h.cwnd() < before);
        assert!(h.in_slow_start());
        assert_eq!(h.cwnd(), Bytes::new(9000 * 2));
    }

    #[test]
    fn outramps_cubic_after_loss_at_long_rtt() {
        // The arXiv:1610.03534 ordering this PR pins end-to-end: at
        // 200 ms RTT, post-loss H-TCP's quadratic α recovers window
        // faster than CUBIC's cubic-in-time curve from a small W_max.
        use crate::cc::cubic::Cubic;
        let iw = Bytes::new(9000 * 10);
        let mut h = Htcp::new(mss(), iw);
        let mut c = Cubic::new(mss(), iw);
        let rtt = SimDuration::from_millis(200);
        let t0 = SimTime::ZERO + rtt;
        h.on_ack(iw, Some(rtt), t0, iw, true);
        c.on_ack(iw, Some(rtt), t0, iw, true);
        h.on_loss(t0);
        c.on_loss(t0);
        let mut now = t0;
        for _ in 0..100 {
            now += rtt;
            let wh = h.cwnd();
            h.on_ack(wh, Some(rtt), now, wh, true);
            let wc = c.cwnd();
            c.on_ack(wc, Some(rtt), now, wc, true);
        }
        assert!(
            h.cwnd() >= c.cwnd(),
            "H-TCP {} must out-ramp CUBIC {} at 200 ms RTT",
            h.cwnd(),
            c.cwnd()
        );
    }

    #[test]
    fn ssthresh_reported_after_loss_only() {
        let mut h = htcp();
        assert_eq!(h.ssthresh(), None);
        h.on_loss(SimTime::ZERO);
        assert_eq!(h.ssthresh(), Some(h.cwnd()));
    }

    #[test]
    fn pacing_ratio_by_phase() {
        let mut h = htcp();
        let srtt = SimDuration::from_millis(10);
        let ss = h.pacing_rate(srtt).as_bps();
        let expect_ss = h.cwnd().bits() as f64 / 0.01 * 2.0;
        assert!((ss - expect_ss).abs() / expect_ss < 1e-9);
        h.on_loss(SimTime::ZERO);
        let ca = h.pacing_rate(srtt).as_bps();
        let expect_ca = h.cwnd().bits() as f64 / 0.01 * 1.2;
        assert!((ca - expect_ca).abs() / expect_ca < 1e-9);
    }
}
