//! `iperf3sim` — a model of the iperf3 benchmark tool (v3.17 + the
//! paper's patches) driving the simulator.
//!
//! The paper's measurements are all made with a patched iperf3
//! (§III-B):
//!
//! * **v3.16** introduced multi-threaded parallel streams — before
//!   that, `-P 8` ran all streams on *one* thread/core;
//! * **patch #1690** added `--skip-rx-copy` (receive with `MSG_TRUNC`)
//!   and `--zerocopy=z` (send with `MSG_ZEROCOPY`);
//! * **patch #1728** widened `--fq-rate` from `u32` so pacing above
//!   32 Gbps became possible.
//!
//! [`Iperf3Opts`] mirrors the command line, [`run`] executes a test
//! over a [`netsim::Simulation`], and [`Iperf3Report`] renders results
//! in the familiar `[SUM] ... Gbits/sec  N retr` form (plus a JSON-ish
//! dump, since iperf3's `-J` is what the paper's harness parses).

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod neper;
pub mod opts;
pub mod report;
pub mod runner;
pub mod version;

pub use neper::{run_tcp_stream, NeperOpts, NeperReport};
pub use opts::Iperf3Opts;
pub use report::{Iperf3Report, StreamReport};
pub use runner::{run, run_with_faults, start_session, RunError, SessionCheckpoint, SimSession};
pub use version::Iperf3Version;
