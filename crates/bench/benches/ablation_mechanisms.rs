//! Mechanism ablations: the simulated cost/benefit of individual
//! features, measured by toggling exactly one knob on a fixed scenario.
//! These benchmark the *simulation* of each mechanism (and double as a
//! performance regression net for the hot paths each mechanism adds).

use bench::timing::BenchGroup;
use bench::{quick_opts, BenchScenario};
use dtnperf::prelude::*;

fn base() -> BenchScenario {
    BenchScenario {
        name: "copy_baseline",
        host: Testbeds::amlight_host(KernelVersion::L6_8),
        path: Testbeds::amlight_path(AmLightPath::Wan25ms),
        opts: quick_opts(2),
        faults: FaultPlan::none(),
    }
}

fn main() {
    let mut group = BenchGroup::new("mechanisms", 1, 3);

    let copy = base();
    group.bench("copy_send_path", || copy.run_or_exit());

    let mut zc = base();
    zc.opts = zc.opts.zerocopy();
    group.bench("zerocopy_send_path", || zc.run_or_exit());

    let mut paced = base();
    paced.opts = paced.opts.fq_rate(BitRate::gbps(30.0));
    group.bench("fq_pacing", || paced.run_or_exit());

    let mut trunc = base();
    trunc.opts = trunc.opts.skip_rx_copy();
    group.bench("skip_rx_copy", || trunc.run_or_exit());

    let mut bbr = base();
    bbr.opts = bbr.opts.congestion(CcAlgorithm::BbrV1);
    group.bench("bbr_congestion_control", || bbr.run_or_exit());

    // Loss recovery: a path with random loss exercises SACK/fast
    // retransmit/TLP continuously.
    let mut lossy = base();
    lossy.path = lossy.path.with_random_loss(1e-4);
    group.bench("loss_recovery", || lossy.run_or_exit());

    // Fault injection: a mid-run link flap exercises the fault
    // machinery plus RTO-driven recovery.
    let mut flapped = base();
    flapped.faults = FaultPlan::none().with_link_flap(
        SimDuration::from_millis(800),
        SimDuration::from_millis(100),
    );
    group.bench("fault_link_flap", || flapped.run_or_exit());
}
