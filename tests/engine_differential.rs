//! Differential test: the 4-ary indexed heap inside
//! [`simcore::EventQueue`] against a straightforward
//! `BinaryHeap`-based reference, on randomized push/pop schedules.
//!
//! The determinism contract (DESIGN.md §6e) says any correct min-heap
//! keyed on `(time, seq)` pops the *identical* total order, because
//! the monotonically increasing `seq` makes every key unique. This
//! suite is the executable form of that claim: if the engine's sift
//! logic ever breaks tie-ordering or drops an element, these tests
//! catch it without needing a full simulation to diverge first.
//!
//! Randomness is a hand-rolled LCG from fixed seeds (same policy as
//! `tests/properties.rs`): failures are reproducible by construction,
//! and the root crate stays dependency-free.

use dtnperf::simcore::{EventQueue, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference implementation: `std::collections::BinaryHeap` (a binary
/// max-heap) over `Reverse<(time, seq)>`, with the same same-time FIFO
/// tiebreak the real engine guarantees via its monotonic sequence
/// number.
struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, ElemBox<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Payload wrapper that always compares equal, so the reference heap
/// orders strictly on `(time, seq)` and never peeks at the event —
/// exactly like the real engine.
struct ElemBox<E>(E);

impl<E> PartialEq for ElemBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for ElemBox<E> {}
impl<E> PartialOrd for ElemBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ElemBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> ReferenceQueue<E> {
    fn new() -> Self {
        ReferenceQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    fn push(&mut self, at: SimTime, event: E) {
        // Mirror the engine's release-mode clamp so the two stay
        // comparable even on schedules that touch the past.
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, ElemBox(event))));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, ElemBox(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }
}

/// Minimal LCG (Numerical Recipes constants), good enough to scatter
/// times and interleave operations.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Drain both queues completely and assert the pop streams are
/// identical — times, payloads, and order.
fn assert_drained_identically(engine: &mut EventQueue<u64>, reference: &mut ReferenceQueue<u64>) {
    loop {
        let a = engine.pop();
        let b = reference.pop();
        assert_eq!(a, b, "engine and reference diverged while draining");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn randomized_bulk_schedules_match_reference() {
    for seed in 0..32u64 {
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ seed);
        let mut engine = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let n = 1 + (rng.next() % 2000) as usize;
        // Alternate seeds between a tight time range (heavy same-time
        // collisions, where FIFO tie-ordering actually matters) and a
        // seconds-wide one (events land far beyond the near band).
        let spread = if seed.is_multiple_of(2) { 64 } else { 3_000_000_000 };
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::from_nanos(rng.next() % spread);
            engine.push(t, i as u64);
            reference.push(t, i as u64);
        }
        assert_drained_identically(&mut engine, &mut reference);
    }
}

#[test]
fn interleaved_push_pop_matches_reference() {
    for seed in 0..16u64 {
        let mut rng = Lcg(0xdeadbeefcafe ^ (seed << 17));
        let mut engine = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut next_payload = 0u64;
        for _ in 0..4000 {
            // Bias towards pushes so the queues stay non-trivially
            // deep; pops advance `now`, making later pushes relative
            // to a moving clock like a real simulation.
            if !rng.next().is_multiple_of(3) {
                // Mostly near-term events plus an RTO-timer-like tail
                // milliseconds out — the bimodal spread a TCP
                // simulation produces, which keeps the engine's far
                // band (see DESIGN.md §6e) busy migrating.
                let delta = if rng.next().is_multiple_of(7) {
                    SimDuration::from_nanos(1_000_000 + rng.next() % 20_000_000)
                } else {
                    SimDuration::from_nanos(rng.next() % 1000)
                };
                let t = engine.now() + delta;
                engine.push(t, next_payload);
                reference.push(t, next_payload);
                next_payload += 1;
            } else {
                assert_eq!(engine.pop(), reference.pop(), "mid-run divergence");
            }
        }
        assert_drained_identically(&mut engine, &mut reference);
    }
}

#[test]
fn popped_times_are_monotone_and_count_preserving() {
    let mut rng = Lcg(42);
    let mut engine = EventQueue::with_capacity(512);
    let n = 5000u64;
    for i in 0..n {
        let t = SimTime::ZERO + SimDuration::from_micros(rng.next() % 10_000);
        engine.push(t, i);
    }
    let mut last = SimTime::ZERO;
    let mut seen = 0u64;
    while let Some((t, _)) = engine.pop() {
        assert!(t >= last, "pop times went backwards");
        last = t;
        seen += 1;
    }
    assert_eq!(seen, n, "events were lost or duplicated");
    assert_eq!(engine.total_popped(), engine.total_pushed());
}
