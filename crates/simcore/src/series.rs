//! Time-indexed sample series — the storage primitive behind the
//! telemetry sampler.
//!
//! The paper's methodology runs `ss -tin`, `ethtool -S` and `mpstat`
//! on a fixed tick alongside every test (§III-G); each of those
//! streams is a sequence of `(time, sample)` pairs. [`TimeSeries`]
//! holds one such sequence with monotonically non-decreasing
//! timestamps, in struct-of-arrays form so a disabled sampler costs
//! nothing and an enabled one appends without re-boxing.

use crate::time::SimTime;

/// A monotonically time-ordered series of samples.
#[derive(Debug, Clone)]
pub struct TimeSeries<T> {
    times: Vec<SimTime>,
    values: Vec<T>,
}

impl<T> Default for TimeSeries<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimeSeries<T> {
    /// Empty series (allocates nothing until the first push).
    pub fn new() -> Self {
        TimeSeries { times: Vec::new(), values: Vec::new() }
    }

    /// Append a sample taken at `t`. Timestamps must not go backwards;
    /// equal timestamps are allowed (an end-of-run flush can land on
    /// the final tick).
    pub fn push(&mut self, t: SimTime, value: T) {
        debug_assert!(
            self.times.last().is_none_or(|&last| t >= last),
            "time series must be pushed in order"
        );
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sample timestamps, in push order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The sample values, in push order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterate `(time, &value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.times.iter().copied().zip(self.values.iter())
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(SimTime, &T)> {
        Some((*self.times.last()?, self.values.last()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(at(1), 10u64);
        s.push(at(2), 20);
        s.push(at(2), 21); // equal timestamps allowed (end-of-run flush)
        assert_eq!(s.len(), 3);
        let collected: Vec<(SimTime, u64)> = s.iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(collected, vec![(at(1), 10), (at(2), 20), (at(2), 21)]);
        assert_eq!(s.last(), Some((at(2), &21)));
        assert_eq!(s.times().len(), s.values().len());
    }

    #[test]
    fn empty_series_allocates_nothing() {
        let s: TimeSeries<u64> = TimeSeries::new();
        assert_eq!(s.times.capacity(), 0);
        assert_eq!(s.values.capacity(), 0);
        assert!(s.last().is_none());
    }

    #[test]
    #[should_panic(expected = "pushed in order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_rejected() {
        let mut s = TimeSeries::new();
        s.push(at(2), 1u64);
        s.push(at(1), 2);
    }
}
