//! Seedable randomness for reproducible runs.
//!
//! Every simulation run owns one [`SimRng`], seeded by the harness. All
//! stochastic elements — service-time jitter, cross-traffic burst
//! arrivals, flow start offsets, `irqbalance` core placement — draw from
//! it, so a (config, seed) pair fully determines a run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulation's random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child generator (e.g. one per flow) so that
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "uniform_u64 needs a non-empty range");
        self.inner.gen_range(lo..hi)
    }

    /// A multiplicative jitter factor in `[1-amplitude, 1+amplitude]`.
    ///
    /// Used to perturb CPU service times a few percent per burst, which
    /// is what gives repeated runs the run-to-run variance the paper's
    /// stdev columns report.
    pub fn jitter(&mut self, amplitude: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&amplitude), "jitter amplitude out of range");
        if amplitude == 0.0 {
            return 1.0;
        }
        1.0 + self.inner.gen_range(-amplitude..amplitude)
    }

    /// Exponentially distributed value with the given mean (burst/idle
    /// durations for on-off cross traffic).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Raw u64 (for deriving seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should not match");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // The parents stay in sync regardless of child usage.
        for _ in 0..10 {
            c1.next_u64();
        }
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let j = rng.jitter(0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of bounds");
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn exponential_mean_approximate() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.2, "estimated mean {est} too far from {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
        for _ in 0..100 {
            let v = rng.uniform_u64(5, 8);
            assert!((5..8).contains(&v));
        }
    }
}
