//! Raw simulator performance: how fast the discrete-event engine
//! chews through representative workloads (reported as wall time per
//! simulated test; the event counts are printed by `--nocapture`
//! diagnostics elsewhere).

use bench::timing::BenchGroup;
use bench::{quick_opts, BenchScenario};
use dtnperf::prelude::*;

fn scenario_lan_single() -> BenchScenario {
    BenchScenario {
        name: "lan_single",
        host: Testbeds::esnet_host(KernelVersion::L6_8),
        path: Testbeds::esnet_path(EsnetPath::Lan),
        opts: quick_opts(1),
        faults: FaultPlan::none(),
    }
}

fn scenario_wan_paced() -> BenchScenario {
    BenchScenario {
        name: "wan_paced",
        host: Testbeds::amlight_host(KernelVersion::L6_8),
        path: Testbeds::amlight_path(AmLightPath::Wan25ms),
        opts: quick_opts(2).zerocopy().fq_rate(BitRate::gbps(50.0)),
        faults: FaultPlan::none(),
    }
}

fn scenario_multiflow() -> BenchScenario {
    BenchScenario {
        name: "multiflow",
        host: Testbeds::esnet_host(KernelVersion::L5_15),
        path: Testbeds::esnet_path(EsnetPath::Lan),
        opts: quick_opts(1).parallel(8),
        faults: FaultPlan::none(),
    }
}

fn main() {
    let mut group = BenchGroup::new("simulator", 1, 5);
    for scenario in [scenario_lan_single(), scenario_wan_paced(), scenario_multiflow()] {
        group.bench(scenario.name, || {
            let gbps = scenario.run_or_exit();
            assert!(gbps > 0.5, "{}: {gbps}", scenario.name);
            gbps
        });
    }

    use dtnperf::simcore::{EventQueue, SimTime};
    group.bench("event_queue_push_pop_100k", || {
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            q.push(SimTime::from_nanos((i * 7919) % 1_000_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}
