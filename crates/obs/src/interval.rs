//! Fixed-width interval aggregation with streaming histograms.
//!
//! [`IntervalAggregator`] folds timestamped `(metric, value)` samples
//! into fixed-width time intervals, keeping one [`HdrHistogram`] per
//! metric per *open* interval. Two usage modes:
//!
//! * **batch** — record everything, then [`IntervalAggregator::finish`];
//! * **streaming** — call [`IntervalAggregator::seal_before`] as a
//!   watermark advances so memory stays O(open intervals × metrics ×
//!   buckets) regardless of total sample count (the fleet-workload
//!   requirement of ROADMAP item 2).
//!
//! Samples may arrive out of order across sources (e.g. folding one
//! flow's time series after another); only sealing imposes order.
//! Samples below the watermark are counted as `late` and dropped
//! deterministically rather than silently misfiled.

use std::collections::BTreeMap;

use crate::hist::HdrHistogram;
use crate::json_escape;

/// One sealed interval: `[start, start + width)` in caller time units,
/// with a histogram per metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval start in caller ticks (`index × width`).
    pub start: u64,
    /// Interval width in caller ticks.
    pub width: u64,
    /// Per-metric sample distributions within this interval.
    pub metrics: BTreeMap<String, HdrHistogram>,
}

impl IntervalRecord {
    /// Render as one JSON line: exact ints for count/min/max, decimal
    /// floats for mean, and the bounded-error p50/p90/p99/p999
    /// quantiles (p999 is the fleet-workload tail-latency headline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"start\":{},\"width\":{},\"metrics\":{{", self.start, self.width);
        let mut first = true;
        for (name, h) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                json_escape(name),
                h.count(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.quantile(0.50).unwrap_or(0),
                h.quantile(0.90).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.quantile(0.999).unwrap_or(0),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Folds timestamped samples into fixed-width interval series; see the
/// module docs for the batch vs streaming contract.
#[derive(Debug)]
pub struct IntervalAggregator {
    width: u64,
    /// Open intervals by index, each `metric → histogram`.
    open: BTreeMap<u64, BTreeMap<String, HdrHistogram>>,
    sealed: Vec<IntervalRecord>,
    /// First interval index not yet sealed; samples below it are late.
    watermark: u64,
    late: u64,
}

impl IntervalAggregator {
    /// A new aggregator with the given interval width in caller ticks
    /// (e.g. nanoseconds of sim time). Width 0 is clamped to 1.
    pub fn new(width: u64) -> Self {
        Self { width: width.max(1), open: BTreeMap::new(), sealed: Vec::new(), watermark: 0, late: 0 }
    }

    /// Interval width in caller ticks.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Record `value` for `metric` at time `t` (caller ticks). Samples
    /// in already-sealed intervals are dropped and counted as late.
    pub fn record(&mut self, t: u64, metric: &str, value: u64) {
        let idx = t / self.width;
        if idx < self.watermark {
            self.late = self.late.saturating_add(1);
            return;
        }
        self.open
            .entry(idx)
            .or_default()
            .entry(metric.to_string())
            .or_default()
            .record(value);
    }

    /// Seal every open interval that ends at or before time `t`,
    /// moving it (in ascending order) into the sealed series. Empty
    /// intervals are never materialised.
    pub fn seal_before(&mut self, t: u64) {
        let first_open = t / self.width;
        while let Some((&idx, _)) = self.open.first_key_value() {
            if idx >= first_open {
                break;
            }
            // Infallible: the `while let` above just observed a first
            // entry and nothing was removed since.
            let (idx, metrics) = self.open.pop_first().expect("checked non-empty");
            self.sealed.push(IntervalRecord { start: idx * self.width, width: self.width, metrics });
        }
        self.watermark = self.watermark.max(first_open);
    }

    /// Number of samples dropped for arriving below the watermark.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Number of currently open (unsealed, non-empty) intervals.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Seal everything and return the full series in time order.
    pub fn finish(mut self) -> Vec<IntervalRecord> {
        self.seal_before(u64::MAX);
        self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_samples_into_intervals() {
        let mut agg = IntervalAggregator::new(1000);
        agg.record(10, "rtt", 5);
        agg.record(999, "rtt", 7);
        agg.record(1000, "rtt", 9);
        agg.record(2500, "goodput", 100);
        let series = agg.finish();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].start, 0);
        assert_eq!(series[0].metrics["rtt"].count(), 2);
        assert_eq!(series[1].start, 1000);
        assert_eq!(series[1].metrics["rtt"].count(), 1);
        assert_eq!(series[2].start, 2000);
        assert_eq!(series[2].metrics["goodput"].max(), Some(100));
    }

    #[test]
    fn out_of_order_across_sources_is_fine() {
        // Flow A's whole series, then flow B's — earlier timestamps
        // reappear but nothing has been sealed yet.
        let mut agg = IntervalAggregator::new(100);
        for t in [0u64, 100, 200] {
            agg.record(t, "g", 1);
        }
        for t in [0u64, 100, 200] {
            agg.record(t, "g", 3);
        }
        let series = agg.finish();
        assert_eq!(series.len(), 3);
        for rec in &series {
            assert_eq!(rec.metrics["g"].count(), 2);
        }
        assert_eq!(series[0].metrics["g"].sum(), 4);
    }

    #[test]
    fn streaming_seal_bounds_memory_and_counts_late() {
        let mut agg = IntervalAggregator::new(10);
        for t in 0..100 {
            agg.record(t, "m", t);
        }
        assert_eq!(agg.open_len(), 10);
        agg.seal_before(50);
        assert_eq!(agg.open_len(), 5);
        agg.record(49, "m", 1); // below watermark: late, dropped
        assert_eq!(agg.late(), 1);
        agg.record(50, "m", 1); // at watermark: accepted
        let series = agg.finish();
        assert_eq!(series.len(), 10);
        assert_eq!(series[5].metrics["m"].count(), 11);
        // Sealed series is in time order with correct starts.
        for (i, rec) in series.iter().enumerate() {
            assert_eq!(rec.start, i as u64 * 10);
        }
    }

    #[test]
    fn json_line_shape() {
        let mut agg = IntervalAggregator::new(1_000_000_000);
        agg.record(0, "goodput_bps", 12_000_000_000);
        agg.record(1, "rtt_us", 25_000);
        let series = agg.finish();
        let line = series[0].to_json_line();
        assert!(line.starts_with("{\"start\":0,\"width\":1000000000,"));
        assert!(line.contains("\"goodput_bps\":{\"count\":1,"));
        assert!(line.contains("\"rtt_us\":"));
        assert!(line.contains("\"p99\":"));
        assert!(line.contains("\"p999\":"));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn width_zero_clamped() {
        let mut agg = IntervalAggregator::new(0);
        agg.record(5, "m", 1);
        assert_eq!(agg.finish().len(), 1);
    }
}
